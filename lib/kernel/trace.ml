type span = {
  name : string;
  cat : string;
  mutable args : (string * string) list; (* insertion order *)
  mutable start_us : float;
  mutable dur_us : float;
  mutable children_rev : span list;
}

(* Per-domain collector: an open-span stack plus a bounded ring of
   completed roots. Domain-local, so recording never takes a lock. *)
type collector = {
  mutable stack : span list;
  mutable roots_rev : span list;
  mutable root_count : int;
  mutable spans : int;
  mutable dropped : int;
}

let max_roots = 256
let max_spans = 2_000_000

let fresh () =
  { stack = []; roots_rev = []; root_count = 0; spans = 0; dropped = 0 }

(* [Domain] is shadowed by the kernel's sort-carrier module, hence the
   qualified [Stdlib.Domain] (same as in {!Pool}). *)
let key = Stdlib.Domain.DLS.new_key fresh
let cur () = Stdlib.Domain.DLS.get key

(* The enabled flag doubles as the no-op sink switch: when it is off,
   [with_span] is an atomic load and a direct call of [f]. The bench
   gate keeps that path under 2% of a semantics statement. *)
let enabled_flag = Atomic.make false
let epoch_us = Atomic.make 0.
let enabled () = Atomic.get enabled_flag

let set_enabled b =
  if b && not (Atomic.get enabled_flag) then Atomic.set epoch_us (Mclock.now_us ());
  Atomic.set enabled_flag b

(* Drop the oldest root once the ring is full. [roots_rev] is
   newest-first, so the oldest is the last element; the ring is small
   and overflow is rare, so the O(ring) walk is fine. *)
let add_root c sp =
  if c.root_count >= max_roots then begin
    (match List.rev c.roots_rev with
    | _oldest :: rest -> c.roots_rev <- List.rev rest
    | [] -> ());
    c.dropped <- c.dropped + 1;
    c.root_count <- c.root_count - 1
  end;
  c.roots_rev <- sp :: c.roots_rev;
  c.root_count <- c.root_count + 1

let close c sp =
  sp.dur_us <- Mclock.now_us () -. sp.start_us;
  (match c.stack with
  | top :: rest when top == sp -> c.stack <- rest
  | _ -> ());
  match c.stack with
  | parent :: _ -> parent.children_rev <- sp :: parent.children_rev
  | [] -> add_root c sp

let with_span ?(cat = "") ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let c = cur () in
    if c.spans >= max_spans then begin
      c.dropped <- c.dropped + 1;
      f ()
    end
    else begin
      let sp =
        { name; cat; args; start_us = Mclock.now_us (); dur_us = 0.; children_rev = [] }
      in
      c.spans <- c.spans + 1;
      c.stack <- sp :: c.stack;
      Fun.protect ~finally:(fun () -> close c sp) f
    end
  end

let add_attr k v =
  if Atomic.get enabled_flag then
    match (cur ()).stack with
    | sp :: _ -> sp.args <- sp.args @ [ (k, v) ]
    | [] -> ()

let isolated f =
  let saved = cur () in
  let c = fresh () in
  Stdlib.Domain.DLS.set key c;
  Fun.protect
    ~finally:(fun () ->
      saved.spans <- saved.spans + c.spans;
      saved.dropped <- saved.dropped + c.dropped;
      Stdlib.Domain.DLS.set key saved)
    (fun () ->
      let r = f () in
      (r, List.rev c.roots_rev))

let graft spans =
  if spans <> [] then begin
    let c = cur () in
    match c.stack with
    | sp :: _ -> sp.children_rev <- List.rev_append spans sp.children_rev
    | [] -> List.iter (add_root c) spans
  end

let roots () = List.rev (cur ()).roots_rev
let reset () = Stdlib.Domain.DLS.set key (fresh ())

let stats () =
  let c = cur () in
  (c.spans, c.dropped)

(* Deterministic structural rendering: nesting, names, categories and
   attributes, no timings. *)
let structure () =
  let buf = Buffer.create 1024 in
  let rec go indent sp =
    Buffer.add_string buf indent;
    Buffer.add_string buf sp.name;
    if sp.cat <> "" then begin
      Buffer.add_string buf " [";
      Buffer.add_string buf sp.cat;
      Buffer.add_char buf ']'
    end;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        Buffer.add_string buf v)
      sp.args;
    Buffer.add_char buf '\n';
    List.iter (go (indent ^ "  ")) (List.rev sp.children_rev)
  in
  List.iter (go "") (roots ());
  Buffer.contents buf

let json_escape buf s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Chrome trace format: one complete event ("ph":"X") per span, in
   pre-order. With [virtual_ts] the timestamp is the pre-order rank and
   the duration the subtree size — still properly nested, and
   byte-stable across runs with equal span trees. *)
let write_chrome ?(virtual_ts = false) file =
  let epoch = Atomic.get epoch_us in
  let buf = Buffer.create 65536 in
  let events = ref 0 in
  let rank = ref 0 in
  let rec subtree_size sp =
    List.fold_left (fun acc c -> acc + subtree_size c) 1 sp.children_rev
  in
  let rec emit sp =
    if !events > 0 then Buffer.add_string buf ",\n";
    incr events;
    let ts = if virtual_ts then float_of_int !rank else sp.start_us -. epoch in
    let dur =
      if virtual_ts then float_of_int (subtree_size sp) else sp.dur_us
    in
    incr rank;
    Buffer.add_string buf "{\"name\":\"";
    json_escape buf sp.name;
    Buffer.add_string buf "\",\"cat\":\"";
    json_escape buf (if sp.cat = "" then "fdbs" else sp.cat);
    Buffer.add_string buf "\",\"ph\":\"X\",\"ts\":";
    Buffer.add_string buf (Printf.sprintf "%.3f" ts);
    Buffer.add_string buf ",\"dur\":";
    Buffer.add_string buf (Printf.sprintf "%.3f" dur);
    Buffer.add_string buf ",\"pid\":1,\"tid\":1";
    (if sp.args <> [] then begin
       Buffer.add_string buf ",\"args\":{";
       List.iteri
         (fun i (k, v) ->
           if i > 0 then Buffer.add_char buf ',';
           Buffer.add_char buf '"';
           json_escape buf k;
           Buffer.add_string buf "\":\"";
           json_escape buf v;
           Buffer.add_char buf '"')
         sp.args;
       Buffer.add_char buf '}'
     end);
    Buffer.add_char buf '}';
    List.iter emit (List.rev sp.children_rev)
  in
  List.iter emit (roots ());
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\"traceEvents\":[\n";
      Buffer.output_buffer oc buf;
      output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n");
  !events
