(** Monotonic process clock.

    [Unix.gettimeofday] is a wall clock: NTP can step it forwards or
    backwards at any moment, so durations computed from it can be
    negative or wildly wrong. Everything in this codebase that measures
    {e elapsed time} — budgets, trace spans, benchmark timers — should
    use this module instead. *)

val now : unit -> float
(** Seconds since an arbitrary fixed point (system boot on Linux).
    Never decreases. Unrelated to the epoch: only differences are
    meaningful. *)

val now_us : unit -> float
(** [now () *. 1e6] — microseconds, the unit Chrome traces use. *)
