(** Fault injection for exercising rollback and recovery paths.

    Execution code calls {!hit} at named sites; an armed fault fires
    there — aborting, exhausting a budget, or flipping the next
    constraint verdict. Site-keyed ({!arm}) or probabilistic
    ({!arm_probability}, seeded PRNG); nothing fires unless armed.

    Transaction sites: [txn.begin], [txn.commit], [txn.constraint],
    [journal.append], [semantics.exec]. Replication sites:
    [replication.snapshot] fires between writing a snapshot's temp file
    and renaming it into place (a torn snapshot on disk — recovery must
    fall back to the previous snapshot plus a longer replay);
    [replication.fetch] fires in the leader's fetch handler (the
    server drops the connection — a stream cut mid-entry, exercising
    follower reconnect); [replication.apply] fires before a follower
    applies a fetched entry (the entry is retried on the next fetch). *)

type action =
  | Abort  (** raise {!Injected} at the site *)
  | Exhaust of Budget.resource  (** drain the budget given to {!set_budget} *)
  | Flip  (** negate the next constraint verdict at the site *)

exception Injected of string  (** the site that fired *)

(** Arm a fault at [site], firing on the [after+1]-th hit (default: the
    first). Re-arming a site replaces its previous arming; armed faults
    are one-shot. *)
val arm : ?after:int -> site:string -> action -> unit

(** Arm a fault at every site with probability [p] per hit, driven by a
    deterministic PRNG seeded with [seed]. *)
val arm_probability : p:float -> seed:int -> action -> unit

val disarm_all : unit -> unit
val armed : unit -> bool

(** The budget that a fired [Exhaust] drains (armed by the transaction
    layer); without it, [Exhaust] degrades to [Abort]. *)
val set_budget : Budget.t -> unit

(** How many times [site] has been hit since the last {!disarm_all}
    (counted only while armed). *)
val hits : string -> int

(** Record a hit at [site]; fire any armed fault that matches. *)
val hit : string -> unit

(** Pass a constraint verdict through the injector: an armed [Flip] at
    [site] negates it (once). *)
val flip : string -> bool -> bool

(** Parse a CLI fault spec [SITE[:AFTER][:ACTION]], ACTION one of
    [abort] (default), [exhaust-steps], [exhaust-states],
    [exhaust-time], [flip]. *)
val parse_spec : string -> (string * int * action, string) result

(** Arm from a CLI spec string. *)
val arm_spec : string -> (unit, string) result
