(** Unified resource budgets for execution: step fuel, a cap on
    distinct states explored by fixpoints, and a wall-clock deadline.
    Exhaustion raises {!Exhausted}; the transaction layer maps it to a
    structured {!Error.t} and rolls back.

    Step accounting is atomic, so one budget can be shared by the
    worker domains of a {!Pool} sweep and the total fuel spent stays
    exact — a parallel run exhausts after the same number of
    [spend_step] calls as a sequential one. *)

type resource = Steps | States | Time

val resource_name : resource -> string
val pp_resource : resource Fmt.t

exception Exhausted of resource

type t

(** A budget with every resource unlimited. *)
val unlimited : unit -> t

(** The clock deadlines are measured against when none is injected:
    {!Mclock.now}, monotonic — NTP stepping the wall clock cannot fire
    or defer a time budget. *)
val default_clock : unit -> float

(** [make ?steps ?states ?ms ()] budgets step fuel, a distinct-state
    cap, and an elapsed-time allowance of [ms] milliseconds from now.
    Omitted resources are unlimited; [clock] defaults to
    {!default_clock} (monotonic) and is injectable for tests. *)
val make :
  ?steps:int -> ?states:int -> ?ms:int -> ?clock:(unit -> float) -> unit -> t

val is_unlimited : t -> bool

(** Raise {!Exhausted} [Time] if the deadline has passed. *)
val check_time : t -> unit

(** Spend one step of fuel; also checks the deadline. Safe to call from
    several domains concurrently; each call consumes exactly one unit. *)
val spend_step : t -> unit

(** Steps spent through this budget so far — tracked even when the
    step fuel is unlimited, so admission layers can post-charge a
    request's actual cost against a {!Bucket}. *)
val spent : t -> int

(** The distinct-state cap, if any. *)
val states : t -> int option

(** Tighten a fixpoint limit by the budget's distinct-state cap. *)
val cap_states : t -> int -> int

(** Force a resource to exhaustion (used by {!Fault} injection). *)
val exhaust : t -> resource -> unit

(** Mutex-protected token buckets on the monotonic clock — the
    admission-control primitive: [rate] tokens accrue per second up to
    [burst] (default [max rate 1.]). {!take} is pre-paid admission
    (admit iff the tokens are there); {!charge} is post-paid — it may
    drive the level negative (debt), which {!take} then refuses until
    the refill covers it. Safe to share across domains. *)
module Bucket : sig
  type t

  val make : ?clock:(unit -> float) -> ?burst:float -> rate:float -> unit -> t

  (** [take b cost] deducts [cost] tokens when available, else
      [Error retry_after_seconds]. [cost = 0.] admits exactly when the
      bucket is out of debt. *)
  val take : t -> float -> (unit, float) result

  (** Deduct unconditionally, into debt if need be. *)
  val charge : t -> float -> unit

  (** The current level (after refill); negative while in debt. *)
  val level : t -> float
end

val pp : t Fmt.t
