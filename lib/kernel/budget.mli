(** Unified resource budgets for execution: step fuel, a cap on
    distinct states explored by fixpoints, and a wall-clock deadline.
    Exhaustion raises {!Exhausted}; the transaction layer maps it to a
    structured {!Error.t} and rolls back.

    Step accounting is atomic, so one budget can be shared by the
    worker domains of a {!Pool} sweep and the total fuel spent stays
    exact — a parallel run exhausts after the same number of
    [spend_step] calls as a sequential one. *)

type resource = Steps | States | Time

val resource_name : resource -> string
val pp_resource : resource Fmt.t

exception Exhausted of resource

type t

(** A budget with every resource unlimited. *)
val unlimited : unit -> t

(** The clock deadlines are measured against when none is injected:
    {!Mclock.now}, monotonic — NTP stepping the wall clock cannot fire
    or defer a time budget. *)
val default_clock : unit -> float

(** [make ?steps ?states ?ms ()] budgets step fuel, a distinct-state
    cap, and an elapsed-time allowance of [ms] milliseconds from now.
    Omitted resources are unlimited; [clock] defaults to
    {!default_clock} (monotonic) and is injectable for tests. *)
val make :
  ?steps:int -> ?states:int -> ?ms:int -> ?clock:(unit -> float) -> unit -> t

val is_unlimited : t -> bool

(** Raise {!Exhausted} [Time] if the deadline has passed. *)
val check_time : t -> unit

(** Spend one step of fuel; also checks the deadline. Safe to call from
    several domains concurrently; each call consumes exactly one unit. *)
val spend_step : t -> unit

(** The distinct-state cap, if any. *)
val states : t -> int option

(** Tighten a fixpoint limit by the budget's distinct-state cap. *)
val cap_states : t -> int -> int

(** Force a resource to exhaustion (used by {!Fault} injection). *)
val exhaust : t -> resource -> unit

val pp : t Fmt.t
