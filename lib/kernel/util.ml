(** Small general-purpose helpers used across the framework. *)

(** [cartesian [l1; ...; ln]] is the list of all [[x1; ...; xn]] with
    [xi] drawn from [li], in lexicographic order. [cartesian [] = [[]]]. *)
let cartesian (lists : 'a list list) : 'a list list =
  let add_layer layer acc =
    List.concat_map (fun x -> List.map (fun rest -> x :: rest) acc) layer
  in
  List.fold_right add_layer lists [ [] ]

(** All length-[n] tuples over [xs]. *)
let tuples xs n = cartesian (List.init n (fun _ -> xs))

let rec dedup ?(eq = ( = )) = function
  | [] -> []
  | x :: rest ->
    x :: dedup ~eq (List.filter (fun y -> not (eq x y)) rest)

(** Order-preserving deduplication in O(n) expected time: candidates
    bucket by [hash], and [eq] settles collisions. Agrees with
    {!dedup} whenever [hash] is consistent with [eq]. *)
let dedup_hashed ~(eq : 'a -> 'a -> bool) ~(hash : 'a -> int) (xs : 'a list) :
  'a list =
  let tbl : (int, 'a) Hashtbl.t = Hashtbl.create 64 in
  List.filter
    (fun x ->
      let h = hash x in
      if List.exists (eq x) (Hashtbl.find_all tbl h) then false
      else begin
        Hashtbl.add tbl h x;
        true
      end)
    xs

(** [zip_exn xs ys] pairs two lists of equal length. *)
let zip_exn xs ys =
  try List.combine xs ys
  with Invalid_argument _ -> invalid_arg "Util.zip_exn: length mismatch"

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let sum = List.fold_left ( + ) 0

(* Process-wide fixpoint instrumentation: one round per frontier
   expansion, one state per distinct element accumulated. *)
let c_fixpoint_rounds = Metrics.counter "fixpoint.rounds"
let c_fixpoint_states = Metrics.counter "fixpoint.states"

(** Fixpoint of a monotone set-expansion step: repeatedly apply [step]
    to the frontier, accumulating states distinct under [eq], until no
    new element appears or [limit] elements have been accumulated.

    When [hash] (consistent with [eq]) is given, the visited set is a
    hash table and membership is O(1) expected instead of a linear scan
    over everything seen — the accumulation order, the result, and the
    truncation flag are identical either way. *)
let bfs_fixpoint ~eq ?hash ~limit ~(step : 'a -> 'a list) (starts : 'a list) :
  'a list * bool (* truncated? *) =
  match hash with
  | Some h ->
    let tbl : (int, 'a) Hashtbl.t = Hashtbl.create 256 in
    let seen_rev = ref [] in
    let count = ref 0 in
    let mem x = List.exists (eq x) (Hashtbl.find_all tbl (h x)) in
    let add x =
      Hashtbl.add tbl (h x) x;
      seen_rev := x :: !seen_rev;
      incr count;
      Metrics.incr c_fixpoint_states
    in
    let truncated = ref false in
    let rec loop frontier =
      match frontier with
      | [] -> ()
      | _ when !count >= limit -> truncated := true
      | _ ->
        Metrics.incr c_fixpoint_rounds;
        let next_rev = ref [] in
        List.iter
          (fun x ->
            List.iter
              (fun y ->
                if not (mem y) then
                  if !count < limit then begin
                    add y;
                    next_rev := y :: !next_rev
                  end
                  else truncated := true)
              (step x))
          frontier;
        loop (List.rev !next_rev)
    in
    List.iter (fun x -> if not (mem x) then add x) starts;
    loop (List.rev !seen_rev);
    (List.rev !seen_rev, !truncated)
  | None ->
    let seen = ref [] in
    let mem x = List.exists (eq x) !seen in
    let truncated = ref false in
    let rec loop frontier =
      match frontier with
      | [] -> ()
      | _ when List.length !seen >= limit -> truncated := true
      | _ ->
        Metrics.incr c_fixpoint_rounds;
        let next =
          List.concat_map step frontier
          |> List.filter (fun x -> not (mem x))
          |> dedup ~eq
        in
        let room = limit - List.length !seen in
        let next = if List.length next > room then (truncated := true; take room next) else next in
        Metrics.add c_fixpoint_states (List.length next);
        seen := !seen @ next;
        loop next
    in
    let starts = dedup ~eq starts in
    Metrics.add c_fixpoint_states (List.length starts);
    seen := starts;
    loop starts;
    (!seen, !truncated)

let result_all (results : ('a, 'e) result list) : ('a list, 'e) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | Ok x :: rest -> go (x :: acc) rest
    | Error e :: _ -> Error e
  in
  go [] results

let pp_comma_list pp ppf xs = Fmt.(list ~sep:(any ", ") pp) ppf xs
