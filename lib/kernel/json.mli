(** A minimal JSON value type with a reader and a writer — just enough
    for the toolkit's machine-readable surfaces (the bench reports, the
    Chrome trace files, and the {e fds serve} wire protocol), avoiding
    any parsing dependency. Shared by the perf gate, the trace
    validator, and {!Fdbs_service}'s protocol. *)

type t =
  | Num of float
  | Str of string
  | Bool of bool
  | Null
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Parse a complete JSON document; trailing input is an error. *)
val parse : string -> t

val parse_file : string -> t

(** [field name v] is the member [name] of the object [v], if any. *)
val field : string -> t -> t option

(** Convenience accessors used by protocol decoding; [None] on a type
    mismatch. *)
val to_string_opt : t -> string option

val to_bool_opt : t -> bool option
val to_int_opt : t -> int option
val to_list_opt : t -> t list option

(** Serialize deterministically: object members in the given order,
    integral floats without a fractional part, strings escaped per RFC
    8259 (control characters as [\uXXXX]). One line, no trailing
    newline. *)
val to_string : t -> string
