(** Deterministic work splitting across OCaml 5 domains.

    The refinement checkers sweep large, embarrassingly parallel spaces
    (equation instances x parameter valuations x reachable databases).
    [Pool.map] splits such a work list into contiguous chunks, runs one
    chunk per domain, and concatenates the per-chunk results in input
    order — so for a deterministic worker function the result is
    identical to [List.map], whatever the job count.

    Exceptions are deterministic too: every chunk runs to completion
    (or to its own failure), and the exception of the {e earliest}
    failing chunk is re-raised in the caller, regardless of which domain
    finished first.

    The default job count comes from the [FDBS_JOBS] environment
    variable (or 1), and can be overridden per call or globally (the
    CLI's [--jobs] knob). [Stdlib.Domain] is shadowed inside this
    library by the sort-carrier module {!Domain}, hence the qualified
    uses below. *)

let clamp_jobs n = if n < 1 then 1 else n

let env_jobs () =
  match Sys.getenv_opt "FDBS_JOBS" with
  | None -> None
  | Some s -> Option.map clamp_jobs (int_of_string_opt (String.trim s))

let default = ref (match env_jobs () with Some n -> n | None -> 1)
let default_jobs () = !default
let set_default_jobs n = default := clamp_jobs n

(** What the runtime considers a sensible upper bound: the machine's
    available parallelism. *)
let recommended_jobs () = Stdlib.Domain.recommended_domain_count ()

(** Split [xs] into at most [jobs] contiguous chunks of near-equal
    length, preserving order; no chunk is empty. *)
let chunks ~jobs (xs : 'a list) : 'a list list =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let jobs = min (clamp_jobs jobs) n in
    let base = n / jobs and extra = n mod jobs in
    let rec take k xs front =
      if k = 0 then (List.rev front, xs)
      else
        match xs with
        | [] -> (List.rev front, [])
        | y :: ys -> take (k - 1) ys (y :: front)
    in
    let rec split i xs acc =
      if i >= jobs then List.rev acc
      else
        let k = base + if i < extra then 1 else 0 in
        let chunk, rest = take k xs [] in
        split (i + 1) rest (chunk :: acc)
    in
    split 0 xs []
  end

let h_chunk_us = Metrics.histogram "pool.chunk_us"
let c_chunks = Metrics.counter "pool.chunks"

(* Run one chunk to completion, capturing any exception with its
   backtrace so the merge can re-raise the earliest one. Each chunk's
   latency lands in the [pool.chunk_us] histogram. *)
let run_chunk f chunk =
  let t0 = Mclock.now_us () in
  let r =
    try Ok (List.map f chunk) with e -> Error (e, Printexc.get_raw_backtrace ())
  in
  Metrics.incr c_chunks;
  Metrics.observe_us h_chunk_us (Mclock.now_us () -. t0);
  r

(** [map ?jobs f xs] is [List.map f xs] computed by up to [jobs]
    domains (the caller's domain works the first chunk). Results merge
    in input order; the earliest chunk's exception wins.

    When {!Trace} is enabled, every worker chunk records into an
    isolated collector and its spans are grafted back into the
    caller's open span in chunk order — the merged span tree equals
    the sequential one for any job count (the caller's own chunk runs
    first and records in place). *)
let map ?jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let jobs = match jobs with Some j -> clamp_jobs j | None -> default_jobs () in
  let merge outcomes =
    List.concat_map
      (function
        | Ok ys -> ys
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
      outcomes
  in
  match chunks ~jobs xs with
  | [] -> []
  | [ chunk ] -> merge [ run_chunk f chunk ]
  | first :: rest ->
    let traced = Trace.enabled () in
    let workers =
      List.map
        (fun chunk ->
          Stdlib.Domain.spawn (fun () ->
              if traced then Trace.isolated (fun () -> run_chunk f chunk)
              else (run_chunk f chunk, [])))
        rest
    in
    let head = run_chunk f first in
    let tail = List.map Stdlib.Domain.join workers in
    if traced then List.iter (fun (_, spans) -> Trace.graft spans) tail;
    merge (head :: List.map fst tail)

(** [map_reduce ?jobs ~map:f ~merge ~neutral xs] maps in parallel, then
    folds the per-item results left to right — deterministic for any
    associative-enough [merge] because the fold order is the input
    order. *)
let map_reduce ?jobs ~map:(f : 'a -> 'b) ~(merge : 'b -> 'b -> 'b) ~(neutral : 'b)
    (xs : 'a list) : 'b =
  List.fold_left merge neutral (map ?jobs f xs)
