(** Deterministic work-stealing across OCaml 5 domains.

    The refinement checkers sweep large, embarrassingly parallel spaces
    (equation instances x parameter valuations x reachable databases).
    [Pool.map] distributes such a work list over a pool of persistent
    worker domains with {e work-stealing}: each participant owns a
    contiguous index range of the input, pops size-adaptive blocks off
    its front, and — when its range drains — steals the back half of
    the largest remaining range. Results land in an index-addressed
    array, so the merge is order-preserving by construction and no
    participant ever waits on a slower peer to publish its results.

    Determinism contract (pinned by test/test_parallel.ml):
    [map ?jobs f xs = List.map f xs] for any deterministic [f] and any
    job count. Exceptions are deterministic too: every item runs (or
    fails fast), and the exception of the {e earliest} failing item is
    re-raised in the caller regardless of which domain hit it first.

    Worker domains are spawned once and reused across calls: a [map]
    posts one help request per extra participant and the caller always
    participates, so a call never waits on helper startup and nested
    maps cannot deadlock (untouched helper ranges simply get stolen).

    The default job count comes from the [FDBS_JOBS] environment
    variable (or 1), and can be overridden per call or globally (the
    CLI's [--jobs] knob). [Stdlib.Domain] is shadowed inside this
    library by the sort-carrier module {!Domain}, hence the qualified
    uses below. *)

let clamp_jobs n = if n < 1 then 1 else n

let env_jobs () =
  match Sys.getenv_opt "FDBS_JOBS" with
  | None -> None
  | Some s -> Option.map clamp_jobs (int_of_string_opt (String.trim s))

let default = ref (match env_jobs () with Some n -> n | None -> 1)
let default_jobs () = !default
let set_default_jobs n = default := clamp_jobs n

(** What the runtime considers a sensible upper bound: the machine's
    available parallelism. *)
let recommended_jobs () = Stdlib.Domain.recommended_domain_count ()

(** Split [xs] into at most [jobs] contiguous chunks of near-equal
    length, preserving order; no chunk is empty. This is the initial
    range assignment of [map] (before stealing reshapes it) and a
    public helper in its own right. *)
let chunks ~jobs (xs : 'a list) : 'a list list =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let jobs = min (clamp_jobs jobs) n in
    let base = n / jobs and extra = n mod jobs in
    let rec take k xs front =
      if k = 0 then (List.rev front, xs)
      else
        match xs with
        | [] -> (List.rev front, [])
        | y :: ys -> take (k - 1) ys (y :: front)
    in
    let rec split i xs acc =
      if i >= jobs then List.rev acc
      else
        let k = base + if i < extra then 1 else 0 in
        let chunk, rest = take k xs [] in
        split (i + 1) rest (chunk :: acc)
    in
    split 0 xs []
  end

let h_chunk_us = Metrics.histogram "pool.chunk_us"
let c_chunks = Metrics.counter "pool.chunks"
let c_steals = Metrics.counter "pool.steals"
let c_helpers = Metrics.counter "pool.helpers_spawned"

(* ------------------------------------------------------------------ *)
(* Persistent helper domains.

   Spawning a domain costs far more than a typical obligation chunk,
   and the old spawn-per-call design paid it on every [map] — the
   dominant cost of fine-grained sweeps like Dynamic23's per-equation
   maps. Helpers are spawned on first parallel use, then loop forever
   on a queue of help requests. A help request is a closure capturing
   one map's shared state; a stale request (its map already drained by
   the caller and other helpers) finds only empty ranges and returns
   immediately. Helpers idle in [Condition.wait], which releases the
   runtime lock, so they cost nothing between maps. *)

let help_queue : (unit -> unit) Queue.t = Queue.create ()
let help_lock = Mutex.create ()
let help_cond = Condition.create ()

(* Guarded by [help_lock]. Capped well below the runtime's domain
   limit so other subsystems (server workers, follower streams) can
   still spawn. *)
let helpers_alive = ref 0
let max_helpers = 64

let helper_loop () =
  let rec next () =
    Mutex.lock help_lock;
    while Queue.is_empty help_queue do
      Condition.wait help_cond help_lock
    done;
    let job = Queue.pop help_queue in
    Mutex.unlock help_lock;
    (* Help requests handle their own failures (item exceptions land in
       the map's failure slot); this catch is a last-ditch guard that
       keeps the helper alive no matter what. *)
    (try job () with _ -> ());
    next ()
  in
  next ()

let ensure_helpers wanted =
  let wanted = min wanted max_helpers in
  Mutex.lock help_lock;
  (try
     while !helpers_alive < wanted do
       ignore (Stdlib.Domain.spawn helper_loop : unit Stdlib.Domain.t);
       incr helpers_alive;
       Metrics.incr c_helpers
     done
   with _ -> () (* domain limit reached: the caller still completes alone *));
  Mutex.unlock help_lock

let post_help jobs =
  Mutex.lock help_lock;
  List.iter (fun j -> Queue.push j help_queue) jobs;
  Condition.broadcast help_cond;
  Mutex.unlock help_lock

(* ------------------------------------------------------------------ *)

(* The sequential path: byte-for-byte the old [jobs:1] behavior — items
   run in order, spans record inline, the first exception propagates
   immediately (later items do not run). *)
let run_seq f xs =
  let t0 = Mclock.now_us () in
  let r =
    try Ok (List.map f xs) with e -> Error (e, Printexc.get_raw_backtrace ())
  in
  Metrics.incr c_chunks;
  Metrics.observe_us h_chunk_us (Mclock.now_us () -. t0);
  match r with
  | Ok ys -> ys
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

(** [map ?jobs f xs] is [List.map f xs] computed by up to [jobs]
    participants (the caller's domain always participates, helpers are
    persistent pool domains). Each participant owns a range descriptor
    [(lo, hi) Atomic.t]; owners CAS size-adaptive blocks off the front,
    idle participants steal the back half of the largest remaining
    range. Results are written to slot [i] of a shared array — exactly
    one writer per slot — so the merge preserves input order no matter
    how stealing reshaped the schedule.

    When {!Trace} is enabled, every block (the caller's included) runs
    inside {!Trace.isolated}; the collected span groups are sorted by
    block start index and grafted in that order, so the merged span
    tree equals the sequential one for any job count and any steal
    schedule. *)
let map ?jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let jobs = match jobs with Some j -> clamp_jobs j | None -> default_jobs () in
  let n = List.length xs in
  if n = 0 then []
  else begin
    let p = min jobs n in
    if p = 1 then run_seq f xs
    else begin
      let input = Array.of_list xs in
      let out : 'b option array = Array.make n None in
      (* Initial even split, one remaining-range descriptor per
         participant. CAS on immutable int pairs: every update installs
         a fresh allocation, so physical-equality CAS cannot ABA. *)
      let deques =
        let base = n / p and extra = n mod p in
        let start = ref 0 in
        Array.init p (fun i ->
            let len = base + if i < extra then 1 else 0 in
            let lo = !start in
            start := lo + len;
            Atomic.make (lo, lo + len))
      in
      (* Earliest failing item wins, deterministically: keep the
         minimum index via a CAS loop. Items keep running after a
         failure (budget-exhausted sweeps fail fast anyway), so the
         winner cannot depend on the steal schedule. *)
      let fail : (int * exn * Printexc.raw_backtrace) option Atomic.t =
        Atomic.make None
      in
      let record_failure i e bt =
        let rec go () =
          let cur = Atomic.get fail in
          match cur with
          | Some (j, _, _) when j <= i -> ()
          | _ ->
            if not (Atomic.compare_and_set fail cur (Some (i, e, bt))) then go ()
        in
        go ()
      in
      let traced = Trace.enabled () in
      let grafts : (int * Trace.span list) list Atomic.t = Atomic.make [] in
      let completed = Atomic.make 0 in
      let done_lock = Mutex.create () in
      let done_cond = Condition.create () in
      let run_items lo hi =
        for i = lo to hi - 1 do
          match f input.(i) with
          | y -> out.(i) <- Some y
          | exception e -> record_failure i e (Printexc.get_raw_backtrace ())
        done
      in
      let run_block lo hi =
        let t0 = Mclock.now_us () in
        (if traced then begin
           let (), spans = Trace.isolated (fun () -> run_items lo hi) in
           let rec push () =
             let cur = Atomic.get grafts in
             if not (Atomic.compare_and_set grafts cur ((lo, spans) :: cur))
             then push ()
           in
           push ()
         end
         else run_items lo hi);
        Metrics.incr c_chunks;
        Metrics.observe_us h_chunk_us (Mclock.now_us () -. t0);
        if Atomic.fetch_and_add completed (hi - lo) + (hi - lo) = n then begin
          Mutex.lock done_lock;
          Condition.broadcast done_cond;
          Mutex.unlock done_lock
        end
      in
      (* Pop a size-adaptive block off the front of [me]'s range:
         roughly an eighth of what remains, so blocks shrink as the
         range drains and the tail stays steal-able. *)
      let rec take_own me =
        let d = deques.(me) in
        let ((lo, hi) as cur) = Atomic.get d in
        if lo >= hi then None
        else begin
          let blk = max 1 ((hi - lo + 7) / 8) in
          let hi' = min hi (lo + blk) in
          if Atomic.compare_and_set d cur (hi', hi) then Some (lo, hi')
          else take_own me
        end
      in
      (* Steal the back half of the largest remaining range into [me]'s
         (empty) descriptor. Returns [false] only when every range was
         empty — the signal to stop. *)
      let steal me =
        let best = ref (-1) and best_len = ref 0 in
        Array.iteri
          (fun j d ->
            if j <> me then begin
              let lo, hi = Atomic.get d in
              if hi - lo > !best_len then begin
                best := j;
                best_len := hi - lo
              end
            end)
          deques;
        if !best < 0 then false
        else begin
          let d = deques.(!best) in
          let ((lo, hi) as cur) = Atomic.get d in
          if hi <= lo then true (* raced to empty; rescan *)
          else begin
            let mid = lo + ((hi - lo) / 2) in
            if Atomic.compare_and_set d cur (lo, mid) then begin
              Metrics.incr c_steals;
              Atomic.set deques.(me) (mid, hi)
            end;
            true
          end
        end
      in
      let rec work me =
        match take_own me with
        | Some (lo, hi) ->
          run_block lo hi;
          work me
        | None -> if steal me then work me else ()
      in
      (* Enlist persistent helpers. Arrival order assigns slots; a
         helper that never arrives (queue backlog, spawn failure) is
         harmless — its untouched range gets stolen. *)
      let slots = Atomic.make 1 in
      let helper () =
        let me = Atomic.fetch_and_add slots 1 in
        if me < p then work me
      in
      ensure_helpers (p - 1);
      post_help (List.init (p - 1) (fun _ -> helper));
      work 0;
      Mutex.lock done_lock;
      while Atomic.get completed < n do
        Condition.wait done_cond done_lock
      done;
      Mutex.unlock done_lock;
      if traced then begin
        let blocks =
          List.sort
            (fun (a, _) (b, _) -> compare (a : int) b)
            (Atomic.get grafts)
        in
        Trace.graft (List.concat_map snd blocks)
      end;
      (match Atomic.get fail with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list (Array.map Option.get out)
    end
  end

(** [map_reduce ?jobs ~map:f ~merge ~neutral xs] maps in parallel, then
    folds the per-item results left to right — deterministic for any
    associative-enough [merge] because the fold order is the input
    order. *)
let map_reduce ?jobs ~map:(f : 'a -> 'b) ~(merge : 'b -> 'b -> 'b) ~(neutral : 'b)
    (xs : 'a list) : 'b =
  List.fold_left merge neutral (map ?jobs f xs)
