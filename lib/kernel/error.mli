(** Structured execution errors: code + phase + context, replacing
    string exceptions on the transactional execution path. *)

type phase = Parse | Exec | Commit | Rollback | Replay | Io

val phase_name : phase -> string

type code =
  | Budget_exhausted of Budget.resource
  | Constraint_violation of string  (** the violated constraint's name *)
  | Blocked  (** no outcome: a test admitted no continuation *)
  | Nondeterministic of int  (** distinct outcome count *)
  | Fault_injected of string  (** the fault site that fired *)
  | Unknown_procedure of string
  | Exec_failure  (** an execution-level failure (detail in [message]) *)
  | Not_compilable of string
      (** the offending subformula of a body that the algebra compiler
          cannot handle, under the [`Compiled] evaluation strategy *)
  | Io_failure
  | Replay_mismatch
  | Read_only  (** a write sent to a read-only replica *)
  | Stale_epoch
      (** a replication fetch from an epoch ahead of the leader's *)
  | Overloaded
      (** admission control refused the request (rate limit or shed
          load); the context carries [retry-after-ms] *)
  | Unauthorized  (** a missing or invalid credential *)
  | Monitor_violation of string
      (** a streaming temporal monitor fired; the violated axiom's
          name *)

val code_name : code -> string

type t = {
  code : code;
  phase : phase;
  context : (string * string) list;  (** e.g. which call, which constraint *)
  message : string;
}

val make : ?context:(string * string) list -> phase -> code -> string -> t

(** The exception form, for code that must abort through callers that
    only know how to re-raise; {!Txn.run} and the CLI catch it. *)
exception Error of t

val raise_error :
  ?context:(string * string) list -> phase -> code -> string -> 'a

val makef :
  ?context:(string * string) list ->
  phase ->
  code ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

(** The admission-control rejection: code {!Overloaded}, phase [Exec],
    with [retry_after_s] rounded up into a ["retry-after-ms"] context
    entry clients can parse. *)
val overloaded : ?retry_after_s:float -> string -> t

val pp : t Fmt.t
val to_string : t -> string

(** The wire form used by the [fds serve] protocol: an object with
    [phase], [code], [message], and [context] members. *)
val to_json : t -> Json.t
