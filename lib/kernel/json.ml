(* A minimal JSON value type with a reader and a writer (objects,
   arrays, numbers, strings, booleans, null) — just enough for the
   machine-readable surfaces of the toolkit: the bench reports, the
   Chrome trace files the CLI writes, and the `fds serve` wire
   protocol. Avoids any parsing dependency. *)

type t =
  | Num of float
  | Str of string
  | Bool of bool
  | Null
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse (src : string) : t =
  let pos = ref 0 in
  let len = String.length src in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub src !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some (('"' | '\\' | '/') as c) ->
           Buffer.add_char buf c;
           advance ();
           go ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
         | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
         | Some 'u' ->
           (* pass the escape through undecoded; the validator only
              checks structure *)
           Buffer.add_string buf "\\u";
           advance ();
           go ()
         | _ -> fail "unsupported escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub src start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string_lit ())
    | Some ('-' | '0' .. '9') -> Num (number ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | _ -> fail "expected a value"
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      Arr []
    end
    else begin
      let rec items acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          items (v :: acc)
        | Some ']' ->
          advance ();
          Arr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      items []
    end
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws ();
        let key = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ((key, v) :: acc)
        | Some '}' ->
          advance ();
          Obj (List.rev ((key, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members []
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> len then fail "trailing input";
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let field name = function
  | Obj kvs -> List.assoc_opt name kvs
  | Num _ | Str _ | Bool _ | Null | Arr _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None

let to_int_opt = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_list_opt = function Arr xs -> Some xs | _ -> None

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Integral floats print without a fractional part so protocol ids and
   counters round-trip byte-identically; everything else uses %.17g
   (shortest exact double rendering is overkill here). *)
let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let to_string (v : t) : string =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> add_num buf f
    | Str s -> escape_string buf s
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string buf ", ";
          escape_string buf k;
          Buffer.add_string buf ": ";
          go x)
        kvs;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf
