(** Deterministic work-stealing across OCaml 5 domains.

    [map ?jobs f xs] equals [List.map f xs] for any deterministic [f],
    whatever the job count: each participant owns a contiguous index
    range, pops size-adaptive blocks off its front, and steals the
    back half of the largest remaining range when idle. Results are
    written to an index-addressed array — one writer per slot — so the
    merge preserves input order for any steal schedule. If several
    items raise, the {e earliest item}'s exception is re-raised in the
    caller — independent of scheduling. Worker domains are persistent:
    spawned on first parallel use, reused by every later call. *)

(** The session-wide default job count: the [FDBS_JOBS] environment
    variable at startup, or 1. *)
val default_jobs : unit -> int

(** Override the session-wide default (clamped to at least 1); the
    CLI's [--jobs] knob. *)
val set_default_jobs : int -> unit

(** The machine's available parallelism
    ([Domain.recommended_domain_count]). *)
val recommended_jobs : unit -> int

(** Split a list into at most [jobs] contiguous, near-equal, non-empty
    chunks, preserving order. [List.concat (chunks ~jobs xs) = xs].
    This is also [map]'s initial range assignment, before stealing
    reshapes it. *)
val chunks : jobs:int -> 'a list -> 'a list list

(** Parallel [List.map]; [jobs] defaults to {!default_jobs}. The
    caller's domain always participates, so [jobs:1] spawns nothing
    and a map never waits on helper startup. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** Parallel map followed by a left fold of the results in input
    order. *)
val map_reduce :
  ?jobs:int -> map:('a -> 'b) -> merge:('b -> 'b -> 'b) -> neutral:'b -> 'a list -> 'b
