(** Deterministic work splitting across OCaml 5 domains.

    [map ?jobs f xs] equals [List.map f xs] for any deterministic [f],
    whatever the job count: the work list is split into contiguous
    chunks, one chunk per domain, and results concatenate in input
    order. If several chunks raise, the earliest chunk's exception is
    re-raised in the caller — independent of scheduling. *)

(** The session-wide default job count: the [FDBS_JOBS] environment
    variable at startup, or 1. *)
val default_jobs : unit -> int

(** Override the session-wide default (clamped to at least 1); the
    CLI's [--jobs] knob. *)
val set_default_jobs : int -> unit

(** The machine's available parallelism
    ([Domain.recommended_domain_count]). *)
val recommended_jobs : unit -> int

(** Split a list into at most [jobs] contiguous, near-equal, non-empty
    chunks, preserving order. [List.concat (chunks ~jobs xs) = xs]. *)
val chunks : jobs:int -> 'a list -> 'a list list

(** Parallel [List.map]; [jobs] defaults to {!default_jobs}. The
    caller's domain works the first chunk, so [jobs:1] spawns
    nothing. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** Parallel map followed by a left fold of the results in input
    order. *)
val map_reduce :
  ?jobs:int -> map:('a -> 'b) -> merge:('b -> 'b -> 'b) -> neutral:'b -> 'a list -> 'b
