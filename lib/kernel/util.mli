(** Small general-purpose helpers used across the framework. *)

(** [cartesian [l1; ...; ln]] is the list of all [[x1; ...; xn]] with
    [xi] drawn from [li], in lexicographic order; [cartesian [] = [[]]]. *)
val cartesian : 'a list list -> 'a list list

(** All length-[n] tuples over the given list. *)
val tuples : 'a list -> int -> 'a list list

(** Order-preserving deduplication under [eq] (defaults to [=]).
    Quadratic; meant for short lists. *)
val dedup : ?eq:('a -> 'a -> bool) -> 'a list -> 'a list

(** Order-preserving deduplication in O(n) expected time; [hash] must
    be consistent with [eq]. Agrees with {!dedup}. *)
val dedup_hashed : eq:('a -> 'a -> bool) -> hash:('a -> int) -> 'a list -> 'a list

(** [zip_exn xs ys] pairs two lists; raises [Invalid_argument] on length
    mismatch. *)
val zip_exn : 'a list -> 'b list -> ('a * 'b) list

val take : int -> 'a list -> 'a list
val sum : int list -> int

(** Fixpoint of a monotone set-expansion step: repeatedly apply [step]
    to the frontier, accumulating states distinct under [eq], until no
    new element appears or [limit] elements have been accumulated.
    Returns the accumulated states and whether the limit truncated the
    exploration. Supplying [hash] (consistent with [eq]) replaces the
    linear visited-set scan with O(1)-expected hash membership without
    changing the result. *)
val bfs_fixpoint :
  eq:('a -> 'a -> bool) ->
  ?hash:('a -> int) ->
  limit:int ->
  step:('a -> 'a list) ->
  'a list ->
  'a list * bool

(** First error wins; otherwise the list of successes in order. *)
val result_all : ('a, 'e) result list -> ('a list, 'e) result

val pp_comma_list : 'a Fmt.t -> 'a list Fmt.t
