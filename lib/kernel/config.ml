(* The unified execution configuration — see config.mli. *)

type t = {
  jobs : int option;
  strategy : [ `Auto | `Naive | `Compiled ];
  star_limit : int option;
  steps : int option;
  states : int option;
  ms : int option;
  check_constraints : bool;
  transactional : bool;
  journal : string option;
  fsync : bool;
  trace : string option;
  stats : bool;
  rate_limit : float option;
  rate_burst : float option;
  step_rate : float option;
}

let default =
  {
    jobs = None;
    strategy = `Auto;
    star_limit = None;
    steps = None;
    states = None;
    ms = None;
    check_constraints = true;
    transactional = false;
    journal = None;
    fsync = false;
    trace = None;
    stats = false;
    rate_limit = None;
    rate_burst = None;
    step_rate = None;
  }

let make ?jobs ?(strategy = `Auto) ?star_limit ?steps ?states ?ms
    ?(check_constraints = true) ?(transactional = false) ?journal
    ?(fsync = false) ?trace ?(stats = false) ?rate_limit ?rate_burst ?step_rate
    () =
  {
    jobs;
    strategy;
    star_limit;
    steps;
    states;
    ms;
    check_constraints;
    transactional;
    journal;
    fsync;
    trace;
    stats;
    rate_limit;
    rate_burst;
    step_rate;
  }

let with_jobs n = { default with jobs = Some n }

let resolve_jobs (c : t) =
  match c.jobs with Some n -> max 1 n | None -> Pool.default_jobs ()

let budget (c : t) =
  match (c.steps, c.states, c.ms) with
  | None, None, None -> None
  | steps, states, ms -> Some (Budget.make ?steps ?states ?ms ())
