(** Process-wide counters and latency histograms.

    Counters are plain {!Atomic.t} cells behind a named registry, so
    increments from several {!Pool} worker domains are {e exact}: the
    value read after a parallel sweep equals the number of events, just
    as in a single-domain run (the same contract {!Budget} gives for
    step accounting). Histograms record microsecond latencies into
    power-of-two buckets with an atomic count/sum/max, cheap enough to
    leave on permanently.

    Instruments register themselves at module initialization
    ([let c = Metrics.counter "planner.cache.hit"]) and pay one atomic
    read-modify-write per event afterwards; there is no sampling and no
    locking on the hot path. [fds stats] and the bench [--metrics-json]
    hook print {!snapshot}. *)

type counter
type histogram

val counter : string -> counter
(** [counter name] registers (or retrieves) the process-wide counter
    [name]. Thread-safe; the same name always yields the same cell. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : counter -> int -> unit
(** Mostly for resetting a subsystem's counters (e.g. the planner's
    cache statistics) without touching the rest of the registry. *)

val histogram : string -> histogram
(** [histogram name] registers (or retrieves) a latency histogram with
    power-of-two microsecond buckets. *)

val observe_us : histogram -> float -> unit
(** Record one latency observation, in microseconds. *)

(** An immutable view of every registered instrument, sorted by name. *)
type snapshot = {
  counters : (string * int) list;
  histograms : (string * hist_summary) list;
}

and hist_summary = { h_count : int; h_sum_ns : int; h_max_ns : int }

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered counter and histogram (the instruments stay
    registered). Used by tests and by delta reporting in bench E20. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Counters first (name, value), then histograms (count, mean, max).
    Histogram timing figures are printed only when the count is
    non-zero, so the output for a sequential run is deterministic. *)
