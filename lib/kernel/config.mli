(** The unified execution configuration: one record for the optional
    knobs that used to be threaded as inconsistent [?jobs] / [?budget] /
    [?strategy] arguments across the checkers, the transaction layer,
    and the CLI subcommands. {!Fdbs_service.Session} carries one of
    these; the refinement checkers and {!Design.verify} accept one as
    [?config]. *)

type t = {
  jobs : int option;
      (** parallel sweep width; [None] = {!Pool.default_jobs} *)
  strategy : [ `Auto | `Naive | `Compiled ];
      (** relational-term / wff evaluation strategy *)
  star_limit : int option;
      (** cap on distinct states explored by iteration fixpoints *)
  steps : int option;  (** budget: step fuel per request *)
  states : int option;  (** budget: distinct-state cap per request *)
  ms : int option;  (** budget: wall-clock deadline per request, ms *)
  check_constraints : bool;
      (** check the schema's integrity constraints at commit *)
  transactional : bool;  (** run call batches as atomic transactions *)
  journal : string option;  (** write-ahead journal path *)
  fsync : bool;
      (** fsync the journal after every committed entry, so commits
          survive power loss (not just a process crash); replication
          leaders force this on *)
  trace : string option;  (** Chrome-trace output file *)
  stats : bool;  (** print the metrics snapshot on exit *)
  rate_limit : float option;
      (** admission control: requests per second admitted per server
          connection (token bucket); [None] = unlimited *)
  rate_burst : float option;
      (** burst capacity of the request bucket; [None] = one second's
          worth ([rate_limit]) *)
  step_rate : float option;
      (** admission control: budget steps per second admitted per
          store, post-charged with each request's actual spend *)
}

(** Every knob at its neutral value: jobs/star-limit defaulted, budget
    unlimited, [`Auto] strategy, constraints checked, not
    transactional, no journal, no trace, no stats. *)
val default : t

(** [default] with the given fields overridden. *)
val make :
  ?jobs:int ->
  ?strategy:[ `Auto | `Naive | `Compiled ] ->
  ?star_limit:int ->
  ?steps:int ->
  ?states:int ->
  ?ms:int ->
  ?check_constraints:bool ->
  ?transactional:bool ->
  ?journal:string ->
  ?fsync:bool ->
  ?trace:string ->
  ?stats:bool ->
  ?rate_limit:float ->
  ?rate_burst:float ->
  ?step_rate:float ->
  unit ->
  t

(** [{default with jobs = Some n}] — the common checker-test shape. *)
val with_jobs : int -> t

(** The configured sweep width, resolved against
    {!Pool.default_jobs}. *)
val resolve_jobs : t -> int

(** A {e fresh} budget from the step/state/ms fields — time deadlines
    count from this call, so build one per request. [None] when every
    budget field is unset. *)
val budget : t -> Budget.t option
