(** Hierarchical execution tracing with Chrome-trace output.

    A trace is a forest of {e spans}: named intervals with a category,
    monotonic-clock start/duration ({!Mclock}), ordered string
    attributes, and children. Each domain records into its own
    collector (domain-local storage), so recording is lock-free;
    {!Pool} runs every worker chunk inside {!isolated} and {!graft}s
    the collected spans back into the caller's open span {e in chunk
    order}, which makes the merged tree identical to the sequential
    tree for any [--jobs N] (instrumentation sites are chosen to be
    cache-independent, see PR notes in CHANGES.md).

    Disabled is the default and costs one atomic load per
    [with_span] — the recording sink is swapped out for a no-op, and
    the bench gate fails the build if that overhead ever exceeds 2% of
    a semantics statement. Roots are kept in a bounded ring (oldest
    dropped first) so a runaway trace cannot exhaust memory. *)

type span

val set_enabled : bool -> unit
(** Switch recording on or off, process-wide (all domains). Enabling
    also re-arms the trace epoch used for Chrome timestamps. *)

val enabled : unit -> bool

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a new span, attached to the
    innermost open span of the calling domain (or recorded as a root).
    The span is closed even if [f] raises. When tracing is disabled
    this is just [f ()]. *)

val add_attr : string -> string -> unit
(** Append an attribute to the calling domain's innermost open span
    (no-op when tracing is disabled or no span is open). Used to attach
    values only known mid-span, e.g. result cardinalities. *)

val isolated : (unit -> 'a) -> 'a * span list
(** [isolated f] runs [f] with a fresh collector on the calling domain
    and returns the roots it recorded, restoring the previous collector
    afterwards. {!Pool} wraps each worker chunk in this. *)

val graft : span list -> unit
(** Append already-closed spans (from {!isolated}) as children of the
    calling domain's innermost open span, preserving their order; they
    become roots if no span is open. *)

val roots : unit -> span list
(** Completed root spans of the calling domain, oldest first. *)

val reset : unit -> unit
(** Drop everything recorded by the calling domain. *)

val stats : unit -> int * int
(** [(recorded, dropped)] span counts for the calling domain, including
    spans grafted from workers. *)

val structure : unit -> string
(** A deterministic rendering of the calling domain's span forest —
    names, categories, attributes, and nesting, no timings. Two runs of
    the same workload compare equal iff their span trees match. *)

val write_chrome : ?virtual_ts:bool -> string -> int
(** Write the calling domain's span forest to [file] in Chrome trace
    format (chrome://tracing, Perfetto) and return the number of
    events. With [~virtual_ts:true] timestamps are replaced by
    deterministic pre-order ranks so that runs with identical span
    trees produce byte-identical files (used by the [--jobs]
    determinism smoke; set by [FDBS_TRACE_VIRTUAL_TS] in the CLI). *)
