(** Well-formed formulas of a many-sorted first-order language. *)

open Fdbs_kernel

type t =
  | True
  | False
  | Pred of string * Term.t list
  | Eq of Term.t * Term.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | Forall of Term.var * t
  | Exists of Term.var * t

let tru = True
let fls = False
let pred name args = Pred (name, args)
let eq t1 t2 = Eq (t1, t2)
let neq t1 t2 = Not (Eq (t1, t2))
let not_ f = Not f
let ( &&& ) f g = And (f, g)
let ( ||| ) f g = Or (f, g)
let ( ==> ) f g = Imp (f, g)
let ( <=> ) f g = Iff (f, g)

let conj = function [] -> True | f :: rest -> List.fold_left ( &&& ) f rest
let disj = function [] -> False | f :: rest -> List.fold_left ( ||| ) f rest

let forall vs f = List.fold_right (fun v acc -> Forall (v, acc)) vs f
let exists vs f = List.fold_right (fun v acc -> Exists (v, acc)) vs f

let rec equal f1 f2 =
  match (f1, f2) with
  | True, True | False, False -> true
  | Pred (p, args1), Pred (q, args2) ->
    p = q && List.length args1 = List.length args2 && List.for_all2 Term.equal args1 args2
  | Eq (a1, b1), Eq (a2, b2) -> Term.equal a1 a2 && Term.equal b1 b2
  | Not g1, Not g2 -> equal g1 g2
  | And (a1, b1), And (a2, b2)
  | Or (a1, b1), Or (a2, b2)
  | Imp (a1, b1), Imp (a2, b2)
  | Iff (a1, b1), Iff (a2, b2) -> equal a1 a2 && equal b1 b2
  | Forall (v1, g1), Forall (v2, g2) | Exists (v1, g1), Exists (v2, g2) ->
    Term.var_equal v1 v2 && equal g1 g2
  | ( (True | False | Pred _ | Eq _ | Not _ | And _ | Or _ | Imp _ | Iff _
      | Forall _ | Exists _), _ ) -> false

(** Structural hash, consistent with {!equal} — the plan cache key for
    compiled wffs and relational-term bodies. *)
let hash (f : t) : int =
  let mix h x = (h * 16777619) lxor x in
  let rec go h = function
    | True -> mix h 11
    | False -> mix h 13
    | Pred (p, args) ->
      List.fold_left (fun h t -> mix h (Term.hash t)) (mix (mix h 17) (Hashtbl.hash p)) args
    | Eq (t1, t2) -> mix (mix (mix h 19) (Term.hash t1)) (Term.hash t2)
    | Not g -> go (mix h 23) g
    | And (g, k) -> go (go (mix h 29) g) k
    | Or (g, k) -> go (go (mix h 31) g) k
    | Imp (g, k) -> go (go (mix h 37) g) k
    | Iff (g, k) -> go (go (mix h 41) g) k
    | Forall (v, g) -> go (mix (mix h 43) (Term.var_hash v)) g
    | Exists (v, g) -> go (mix (mix h 47) (Term.var_hash v)) g
  in
  go 2166136261 f

(** Free variables in first-occurrence order. *)
let free_vars (f : t) : Term.var list =
  let module V = struct
    let mem v l = List.exists (Term.var_equal v) l
  end in
  let add_term bound acc t =
    List.fold_left
      (fun acc v -> if V.mem v bound || V.mem v acc then acc else v :: acc)
      acc (Term.free_vars t)
  in
  let rec go bound acc = function
    | True | False -> acc
    | Pred (_, args) -> List.fold_left (add_term bound) acc args
    | Eq (t1, t2) -> add_term bound (add_term bound acc t1) t2
    | Not g -> go bound acc g
    | And (g, h) | Or (g, h) | Imp (g, h) | Iff (g, h) -> go bound (go bound acc g) h
    | Forall (v, g) | Exists (v, g) -> go (v :: bound) acc g
  in
  List.rev (go [] [] f)

let is_closed f = free_vars f = []

(** Capture-avoiding substitution of terms for free variables.
    Bound variables clashing with variables free in the substituted
    terms are renamed. *)
let rec subst (s : Term.Subst.t) (f : t) : t =
  let free_in_range =
    List.concat_map (fun (_, t) -> Term.free_vars t) (Term.Subst.bindings s)
  in
  let rename (v : Term.var) g =
    if List.exists (Term.var_equal v) free_in_range then begin
      let fresh =
        let rec pick i =
          let cand = { v with Term.vname = v.Term.vname ^ string_of_int i } in
          if List.exists (Term.var_equal cand) free_in_range then pick (i + 1) else cand
        in
        pick 0
      in
      (fresh, subst (Term.Subst.of_list [ (v, Term.Var fresh) ]) g)
    end
    else (v, g)
  in
  let drop v =
    Term.Subst.of_list
      (List.filter (fun (v', _) -> not (Term.var_equal v v')) (Term.Subst.bindings s))
  in
  match f with
  | True | False -> f
  | Pred (p, args) -> Pred (p, List.map (Term.subst s) args)
  | Eq (t1, t2) -> Eq (Term.subst s t1, Term.subst s t2)
  | Not g -> Not (subst s g)
  | And (g, h) -> And (subst s g, subst s h)
  | Or (g, h) -> Or (subst s g, subst s h)
  | Imp (g, h) -> Imp (subst s g, subst s h)
  | Iff (g, h) -> Iff (subst s g, subst s h)
  | Forall (v, g) ->
    let v', g' = rename v g in
    Forall (v', subst (drop v') g')
  | Exists (v, g) ->
    let v', g' = rename v g in
    Exists (v', subst (drop v') g')

(** Well-sortedness of a formula against a signature: every predicate is
    declared with matching argument sorts and both sides of each equality
    share a sort. *)
let check (sg : Signature.t) (f : t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let rec go = function
    | True | False -> Ok ()
    | Pred (p, args) ->
      (match Signature.find_pred sg p with
       | None -> Error (Fmt.str "undeclared predicate symbol %s" p)
       | Some pd ->
         if List.length args <> List.length pd.pargs then
           Error (Fmt.str "predicate %s expects %d arguments, got %d" p
                    (List.length pd.pargs) (List.length args))
         else
           let rec check_args expected actual =
             match (expected, actual) with
             | [], [] -> Ok ()
             | es :: expected, a :: actual ->
               let* s = Term.sort_of sg a in
               if Sort.equal s es then check_args expected actual
               else Error (Fmt.str "argument of %s has sort %s, expected %s" p s es)
             | _ -> assert false
           in
           check_args pd.pargs args)
    | Eq (t1, t2) ->
      let* s1 = Term.sort_of sg t1 in
      let* s2 = Term.sort_of sg t2 in
      if Sort.equal s1 s2 then Ok ()
      else Error (Fmt.str "equality between sorts %s and %s" s1 s2)
    | Not g -> go g
    | And (g, h) | Or (g, h) | Imp (g, h) | Iff (g, h) ->
      let* () = go g in
      go h
    | Forall (v, g) | Exists (v, g) ->
      if Signature.has_sort sg v.Term.vsort then go g
      else Error (Fmt.str "quantifier binds variable of undeclared sort %s" v.Term.vsort)
  in
  go f

(* Precedences: iff 1, imp 2, or 3, and 4, not 5, atoms 6. *)
let rec pp_prec prec ppf f =
  let paren p body = if prec > p then Fmt.pf ppf "(%t)" body else body ppf in
  match f with
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Pred (p, []) -> Fmt.string ppf p
  | Pred (p, args) -> Fmt.pf ppf "%s(%a)" p Fmt.(list ~sep:(any ", ") Term.pp) args
  | Eq (t1, t2) -> Fmt.pf ppf "%a = %a" Term.pp t1 Term.pp t2
  | Not (Eq (t1, t2)) -> Fmt.pf ppf "%a /= %a" Term.pp t1 Term.pp t2
  | Not g -> paren 5 (fun ppf -> Fmt.pf ppf "~%a" (pp_prec 5) g)
  | And (g, h) -> paren 4 (fun ppf -> Fmt.pf ppf "%a & %a" (pp_prec 4) g (pp_prec 5) h)
  | Or (g, h) -> paren 3 (fun ppf -> Fmt.pf ppf "%a | %a" (pp_prec 3) g (pp_prec 4) h)
  | Imp (g, h) -> paren 2 (fun ppf -> Fmt.pf ppf "%a -> %a" (pp_prec 3) g (pp_prec 2) h)
  | Iff (g, h) -> paren 1 (fun ppf -> Fmt.pf ppf "%a <-> %a" (pp_prec 2) g (pp_prec 1) h)
  | Forall (v, g) ->
    paren 0 (fun ppf ->
        Fmt.pf ppf "forall %s:%a. %a" v.Term.vname Sort.pp v.Term.vsort (pp_prec 0) g)
  | Exists (v, g) ->
    paren 0 (fun ppf ->
        Fmt.pf ppf "exists %s:%a. %a" v.Term.vname Sort.pp v.Term.vsort (pp_prec 0) g)

let pp = pp_prec 0
let to_string f = Fmt.str "%a" pp f
