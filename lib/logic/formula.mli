(** Well-formed formulas of a many-sorted first-order language. *)


type t =
  | True
  | False
  | Pred of string * Term.t list
  | Eq of Term.t * Term.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | Forall of Term.var * t
  | Exists of Term.var * t

val tru : t
val fls : t
val pred : string -> Term.t list -> t
val eq : Term.t -> Term.t -> t
val neq : Term.t -> Term.t -> t
val not_ : t -> t

val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( ==> ) : t -> t -> t
val ( <=> ) : t -> t -> t

(** Conjunction of a list; [True] when empty. *)
val conj : t list -> t

(** Disjunction of a list; [False] when empty. *)
val disj : t list -> t

(** Universal closure over the given variables, outermost first. *)
val forall : Term.var list -> t -> t

val exists : Term.var list -> t -> t

(** Syntactic equality (no alpha-conversion). *)
val equal : t -> t -> bool

(** Structural hash, consistent with {!equal}. *)
val hash : t -> int

(** Free variables in first-occurrence order. *)
val free_vars : t -> Term.var list

val is_closed : t -> bool

(** Capture-avoiding substitution of terms for free variables: bound
    variables clashing with variables free in the substituted terms are
    renamed. *)
val subst : Term.Subst.t -> t -> t

(** Well-sortedness against a signature: every predicate declared with
    matching argument sorts, both sides of each equality sharing a
    sort, quantified sorts declared. *)
val check : Signature.t -> t -> (unit, string) result

val pp : t Fmt.t
val to_string : t -> string
