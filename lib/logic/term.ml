(** Terms of a many-sorted first-order language. *)

open Fdbs_kernel

type var = {
  vname : string;
  vsort : Sort.t;
}

type t =
  | Var of var
  | App of string * t list  (** function application; constants are 0-ary *)
  | Lit of Value.t  (** literal value (integers from the concrete syntax) *)

let var name sort = Var { vname = name; vsort = sort }
let const name = App (name, [])
let app name args = App (name, args)
let int n = Lit (Value.Int n)

let var_equal (a : var) (b : var) = a.vname = b.vname && Sort.equal a.vsort b.vsort

let rec equal t1 t2 =
  match (t1, t2) with
  | Var v1, Var v2 -> var_equal v1 v2
  | App (f, args1), App (g, args2) ->
    f = g && List.length args1 = List.length args2 && List.for_all2 equal args1 args2
  | Lit v1, Lit v2 -> Value.equal v1 v2
  | (Var _ | App _ | Lit _), _ -> false

(* A small string/int mixer (FNV-style) shared by the structural hashes
   below; [Hashtbl.hash] would also work but depends on representation
   details we'd rather not bake into cache keys. *)
let mix h x = (h * 16777619) lxor x
let mix_string h s =
  let h = ref h in
  String.iter (fun c -> h := mix !h (Char.code c)) s;
  !h

let var_hash (v : var) = mix_string (mix_string 2166136261 v.vname) v.vsort

(** Structural hash, consistent with {!equal}. *)
let rec hash = function
  | Var v -> mix 3 (var_hash v)
  | App (f, args) -> List.fold_left (fun h t -> mix h (hash t)) (mix_string 5 f) args
  | Lit v -> mix 7 (Value.hash v)

let compare = Stdlib.compare

(** Free variables, in first-occurrence order, without duplicates. *)
let free_vars (t : t) : var list =
  let rec go acc = function
    | Var v -> if List.exists (var_equal v) acc then acc else v :: acc
    | App (_, args) -> List.fold_left go acc args
    | Lit _ -> acc
  in
  List.rev (go [] t)

let is_ground t = free_vars t = []

(** Substitutions: finite maps from variables to terms. *)
module Subst = struct
  type term = t
  type nonrec t = (var * term) list

  let empty : t = []
  let of_list (l : (var * term) list) : t = l
  let bindings (s : t) = s

  let lookup (s : t) v =
    let rec go = function
      | [] -> None
      | (v', t) :: rest -> if var_equal v v' then Some t else go rest
    in
    go s

  let bind (s : t) v t : t = (v, t) :: s
end

(** Apply a substitution (simultaneous, not sequential). *)
let rec subst (s : Subst.t) = function
  | Var v as t -> (match Subst.lookup s v with Some t' -> t' | None -> t)
  | App (f, args) -> App (f, List.map (subst s) args)
  | Lit _ as t -> t

(** [size t] counts the nodes of [t]. *)
let rec size = function
  | Var _ | Lit _ -> 1
  | App (_, args) -> 1 + Fdbs_kernel.Util.sum (List.map size args)

(** [is_subterm s t] holds iff [s] occurs in [t] (including [s = t]). *)
let rec is_subterm s t =
  equal s t || match t with App (_, args) -> List.exists (is_subterm s) args | Var _ | Lit _ -> false

(** Sort of a term under a signature; [Error] explains ill-sortedness. *)
let rec sort_of (sg : Signature.t) (t : t) : (Sort.t, string) result =
  match t with
  | Var v -> Ok v.vsort
  | Lit (Value.Int _) -> Ok (Sort.make "int")
  | Lit (Value.Bool _) -> Ok Sort.bool
  | Lit (Value.Sym s) -> Error (Fmt.str "literal symbol %s has no declared sort" s)
  | App (f, args) ->
    (match Signature.find_func sg f with
     | None -> Error (Fmt.str "undeclared function symbol %s" f)
     | Some fd ->
       if List.length args <> List.length fd.fargs then
         Error (Fmt.str "function %s expects %d arguments, got %d" f
                  (List.length fd.fargs) (List.length args))
       else
         let rec check_args expected actual =
           match (expected, actual) with
           | [], [] -> Ok fd.fres
           | es :: expected, a :: actual ->
             (match sort_of sg a with
              | Error _ as e -> e
              | Ok s ->
                if Sort.equal s es then check_args expected actual
                else Error (Fmt.str "argument of %s has sort %s, expected %s" f s es))
           | _ -> assert false
         in
         check_args fd.fargs args)

let rec pp ppf = function
  | Var v -> Fmt.string ppf v.vname
  | Lit v -> Value.pp ppf v
  | App (f, []) -> Fmt.string ppf f
  | App (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp) args

let to_string t = Fmt.str "%a" pp t
