(** Terms of a many-sorted first-order language. *)

open Fdbs_kernel

type var = {
  vname : string;
  vsort : Sort.t;
}

type t =
  | Var of var
  | App of string * t list  (** function application; constants are 0-ary *)
  | Lit of Value.t  (** literal value (integers from the concrete syntax) *)

val var : string -> Sort.t -> t
val const : string -> t
val app : string -> t list -> t
val int : int -> t

val var_equal : var -> var -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val var_hash : var -> int

(** Structural hash, consistent with {!equal}. *)
val hash : t -> int

(** Free variables, in first-occurrence order, without duplicates. *)
val free_vars : t -> var list

val is_ground : t -> bool

(** Substitutions: finite maps from variables to terms. *)
module Subst : sig
  type term = t
  type t = (var * term) list

  val empty : t
  val of_list : (var * term) list -> t
  val bindings : t -> (var * term) list
  val lookup : t -> var -> term option
  val bind : t -> var -> term -> t
end

(** Apply a substitution (simultaneous, not sequential). *)
val subst : Subst.t -> t -> t

(** Number of nodes. *)
val size : t -> int

(** [is_subterm s t] holds iff [s] occurs in [t] (including [s = t]). *)
val is_subterm : t -> t -> bool

(** Sort of a term under a signature; [Error] explains ill-sortedness.
    Integer literals have sort ["int"], Boolean literals sort [bool]. *)
val sort_of : Signature.t -> t -> (Sort.t, string) result

val pp : t Fmt.t
val to_string : t -> string
