(** Kripke satisfaction for temporal wffs (paper Section 3.1).

    [A ⊨U (◇P)(v)] iff there is B with R(A,B) and [B ⊨U P(v)]; all
    other rules are the familiar first-order ones, with quantifiers
    ranging over the common (finite) domain. *)

open Fdbs_logic

(** Truth of [f] at state [i] of the universe under a valuation. *)
val holds : Universe.t -> int -> Eval.valuation -> Tformula.t -> bool

(** Truth of a closed wff at state [i]. *)
val holds_at : Universe.t -> int -> Tformula.t -> bool

(** States falsifying a closed wff. *)
val failing_states : Universe.t -> Tformula.t -> int list

val holds_everywhere : Universe.t -> Tformula.t -> bool

(** Consistent states: those satisfying all the {e static} axioms
    (paper: "A structure A in S corresponds to a consistent state iff
    it is a model of A1"). *)
val consistent_states : Universe.t -> Tformula.t list -> int list

(** Project named axioms onto their static (first-order) parts; the
    second component names the modal axioms that were skipped, so a
    static-only analysis can report rather than silently ignore them. *)
val static_projections :
  (string * Tformula.t) list -> (string * Formula.t) list * string list

type report = {
  axiom : string;
  kind : Tformula.kind;
  failures : int list;  (** states where the axiom fails *)
}

(** Check every named axiom at every state, classifying each as static
    or transition. *)
val check_axioms : Universe.t -> (string * Tformula.t) list -> report list

val all_pass : report list -> bool
val pp_report : report Fmt.t
