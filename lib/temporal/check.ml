(** Kripke satisfaction for temporal wffs (paper Section 3.1).

    [A ⊨U (◇P)[v]] iff there is B with R(A,B) and [B ⊨U P[v]]; all other
    rules are the familiar first-order ones, with quantifiers ranging
    over the common (finite) domain. *)

open Fdbs_kernel
open Fdbs_logic

(** Truth of [f] at state [i] of universe [u] under valuation [rho]. *)
let rec holds (u : Universe.t) (i : int) (rho : Eval.valuation) (f : Tformula.t) : bool =
  let st = Universe.state u i in
  match f with
  | Tformula.True -> true
  | Tformula.False -> false
  | Tformula.Pred (p, args) -> Eval.formula st rho (Formula.Pred (p, args))
  | Tformula.Eq (t1, t2) -> Eval.formula st rho (Formula.Eq (t1, t2))
  | Tformula.Not g -> not (holds u i rho g)
  | Tformula.And (g, h) -> holds u i rho g && holds u i rho h
  | Tformula.Or (g, h) -> holds u i rho g || holds u i rho h
  | Tformula.Imp (g, h) -> (not (holds u i rho g)) || holds u i rho h
  | Tformula.Iff (g, h) -> holds u i rho g = holds u i rho h
  | Tformula.Forall (v, g) ->
    List.for_all
      (fun value -> holds u i ((v, value) :: rho) g)
      (Domain.carrier (Structure.domain st) v.Term.vsort)
  | Tformula.Exists (v, g) ->
    List.exists
      (fun value -> holds u i ((v, value) :: rho) g)
      (Domain.carrier (Structure.domain st) v.Term.vsort)
  | Tformula.Possibly g -> List.exists (fun j -> holds u j rho g) (Universe.successors u i)
  | Tformula.Necessarily g ->
    List.for_all (fun j -> holds u j rho g) (Universe.successors u i)

(** Truth of a closed wff at state [i]. *)
let holds_at u i f = holds u i [] f

(** States of [u] falsifying the closed wff [f]. *)
let failing_states (u : Universe.t) (f : Tformula.t) : int list =
  List.filter
    (fun i -> not (holds_at u i f))
    (List.init (Universe.num_states u) Fun.id)

(** [f] holds at every state of [u]. *)
let holds_everywhere u f = failing_states u f = []

(** Consistent states: those that are models of all the {e static}
    axioms (paper: "A structure A in S corresponds to a consistent state
    iff it is a model of A1"). *)
let consistent_states (u : Universe.t) (axioms : Tformula.t list) : int list =
  let static = List.filter Tformula.is_static axioms in
  List.filter
    (fun i -> List.for_all (holds_at u i) static)
    (List.init (Universe.num_states u) Fun.id)

(** Project a named axiom list onto its static (first-order) part, and
    say which axioms were left out. Earlier callers did this with a
    bare [List.filter_map Tformula.to_formula], which silently dropped
    every modal axiom of a mixed list — an analysis could claim "all
    axioms hold" while never having looked at half of them. The second
    component names the skipped modal axioms so callers can report
    them. *)
let static_projections (axioms : (string * Tformula.t) list) :
    (string * Formula.t) list * string list =
  let statics, skipped =
    List.partition_map
      (fun (name, f) ->
        match Tformula.to_formula f with
        | Some fo -> Either.Left (name, fo)
        | None -> Either.Right name)
      axioms
  in
  (statics, skipped)

type report = {
  axiom : string;
  kind : Tformula.kind;
  failures : int list;  (** states where the axiom fails *)
}

(** Check every named axiom at every state, classifying each as static
    or transition. *)
let check_axioms (u : Universe.t) (axioms : (string * Tformula.t) list) : report list =
  List.map
    (fun (name, f) ->
      { axiom = name; kind = Tformula.classify f; failures = failing_states u f })
    axioms

let all_pass (reports : report list) = List.for_all (fun r -> r.failures = []) reports

let pp_report ppf (r : report) =
  let kind = match r.kind with Tformula.Static -> "static" | Tformula.Transition -> "transition" in
  match r.failures with
  | [] -> Fmt.pf ppf "axiom %s (%s): holds at every state" r.axiom kind
  | fs ->
    Fmt.pf ppf "axiom %s (%s): FAILS at states [%a]" r.axiom kind
      Fmt.(list ~sep:(any "; ") int) fs
