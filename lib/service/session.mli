(** Long-lived sessions over a shared database store.

    A {!Store.t} loads and validates a schema {e once} and keeps the
    expensive state warm across requests: the planner's compiled plans
    (warmed eagerly at creation), the accumulated active domain, the
    journal path, and the single mutable database state. A {!t}
    (session) is a lightweight view on a store — the CLI opens one per
    invocation, the [fds serve] daemon one per connection — and every
    entry point returns [(value, Fdbs_kernel.Error.t) result]: no
    exception crosses the session boundary.

    Concurrency: every store-state access runs under the store's lock,
    and a transaction buffers its calls in the session until [commit]
    re-executes them atomically against the current store state. Commits
    are serialized, so concurrent sessions are serializable. *)

open Fdbs_kernel
open Fdbs_rpr

module Store : sig
  type t

  (** Validate the schema ({!Fdbs_rpr.Schema.check}), apply the
      configuration's job count, warm the planner cache with every
      constraint and relational assignment, and start from the schema's
      empty instance. [spec] optionally attaches the algebraic level for
      {!Session.eval}. *)
  val create :
    ?config:Config.t ->
    ?spec:Fdbs_algebra.Spec.t ->
    Schema.t ->
    (t, Error.t) result

  val schema : t -> Schema.t

  (** The current state and accumulated active domain, read under one
      lock acquisition. The pair is immutable, so callers evaluate
      against it outside the store lock — the server's parallel read
      path; relation indexes built on the snapshot are published
      one-shot and shared by every reader domain. *)
  val snapshot : t -> Db.t * Fdbs_kernel.Domain.t

  (** Seed the streaming monitors with the store's current committed
      state and advance them on every subsequent commit (through the
      {!Fdbs_rpr.Txn} commit hook). Attach {e after} recovery/replay so
      a replayed history does not re-fire events. [`Observe] (default)
      reports violations to the registered sinks; [`Enforce] also rolls
      the violating commit back with a
      {!Fdbs_kernel.Error.Monitor_violation}. In non-transactional mode
      there is no rollback, so monitors always observe. *)
  val attach_monitors :
    ?mode:[ `Observe | `Enforce ] -> t -> Monitor.t -> unit

  val monitors : t -> Monitor.t option
  val monitor_mode : t -> [ `Observe | `Enforce ] option

  (** Register an event sink, called on the committing thread after the
      violating commit published. Errors when no monitors are
      attached. *)
  val on_monitor_events :
    t -> (Monitor.event list -> unit) -> (unit, Error.t) result
end

type t

(** Open a session on a fresh store: [Store.create] plus {!on_store}. *)
val open_ :
  ?config:Config.t ->
  ?spec:Fdbs_algebra.Spec.t ->
  schema:Schema.t ->
  unit ->
  (t, Error.t) result

(** Parse the schema source ({!Fdbs_rpr.Rparser.schema}), then
    {!open_}. *)
val open_text :
  ?config:Config.t -> ?spec:Fdbs_algebra.Spec.t -> string -> (t, Error.t) result

(** A new session sharing an existing store — the server's
    one-session-per-connection constructor. *)
val on_store : Store.t -> t

val id : t -> int
val store : t -> Store.t
val schema : t -> Schema.t
val config : t -> Config.t
val in_txn : t -> bool

(** The state this session currently observes: its transaction view
    when one is open, the shared store state otherwise. *)
val db : t -> Db.t

(** Discard any open transaction. *)
val close : t -> unit

type outcome = {
  state : Db.t;  (** the (committed) state after the batch *)
  completed : Journal.call list;  (** calls that executed, in order *)
}

type failure = {
  fail_error : Error.t;
  fail_completed : Journal.call list;
      (** non-transactional mode: the successful prefix (its effects
          are kept) *)
  fail_state : Db.t;  (** the state after the failure *)
}

(** Execute a batch of procedure calls. With an open transaction the
    calls run eagerly against the session's private view and are
    buffered for {!commit}; otherwise they run against the shared store
    state under the store lock — atomically via {!Fdbs_rpr.Txn.run}
    when the configuration is transactional (constraints checked,
    journal appended), call-by-call with the successful prefix kept
    otherwise. A fresh budget is drawn from the configuration for every
    batch. *)
val run : t -> Journal.call list -> (outcome, failure) result

(** [run] with a single call, reduced to the plain error. *)
val call : t -> string -> Value.t list -> (Db.t, Error.t) result

val begin_txn : t -> (unit, Error.t) result

(** Re-execute the buffered calls atomically against the current store
    state (constraints, journal and budget as configured) and install
    the result. *)
val commit : t -> (Db.t, Error.t) result

(** Drop the buffered calls and return to the store state. *)
val rollback : t -> (Db.t, Error.t) result

(** Truth of a closed wff in the session's current state. [params]
    declares extra scalar constants [(name, sort, value)], so ground
    queries can name undeclared values. *)
val query :
  t ->
  ?params:(string * Sort.t * Value.t) list ->
  string ->
  (bool, Error.t) result

(** The query plans of the schema — every constraint and every
    relational assignment, compiled and optimized, with live
    cardinalities of the session's current state — rendered exactly as
    [fds explain] prints them. [delta:true] additionally renders each
    constraint's derivative plan — the per-relation insert-derivatives
    the differential layer advances on every commit — as
    [fds explain --delta] shows. *)
val explain : ?delta:bool -> t -> string

(** Evaluate a ground query term against the session's algebraic
    specification by conditional rewriting; with [trace] the rendered
    text carries the derivation, innermost step first. *)
val eval : t -> ?trace:bool -> string -> (string, Error.t) result

type replayed = {
  rep_entries : int;  (** committed journal entries re-run *)
  rep_calls : int;  (** calls across them *)
  rep_torn : string option;
      (** dropped torn-tail / unusable-snapshot warnings *)
  rep_state : Db.t;  (** the recovered state, installed in the store *)
  rep_snapshot : int option;
      (** the offset of the snapshot that seeded the replay, if one was
          installed *)
  rep_offset : int;  (** absolute offset of the last entry recovered *)
  rep_epoch : int;  (** highest replication epoch seen *)
}

(** Recover the committed state from a write-ahead journal, snapshot
    aware: a usable snapshot next to the journal ([journal ^ ".snap"])
    seeds the replay and only the entries behind it re-run — bounded
    recovery; otherwise the full history re-runs from the schema's
    empty instance (an unusable snapshot downgrades to this with a
    warning in [rep_torn], unless the journal was truncated behind it,
    which is unrecoverable). The result is installed as the store
    state. Load failures carry a [("stage", "load")] context entry. *)
val replay : t -> string -> (replayed, Error.t) result

type stats = {
  planner_hits : int;
  planner_misses : int;
  db_size : int;  (** tuples across all relations of the store state *)
  sessions : int;  (** sessions opened on the store *)
  commits : int;  (** committed batches/transactions *)
  metrics : Metrics.snapshot;
}

val stats : t -> stats

type monitor_axiom = {
  ma_name : string;  (** the axiom's name in the temporal theory *)
  ma_kind : Fdbs_temporal.Tformula.kind;
  ma_depth : int;  (** modal nesting depth = the verdict's lag *)
  ma_compiled : bool;  (** safe plan vs. naive evaluation *)
  ma_violations : int;
}

type monitor_status = {
  mon_theory : string;  (** the monitored theory's name *)
  mon_mode : [ `Observe | `Enforce ];
  mon_commits : int;  (** commits the monitors have advanced through *)
  mon_violations : int;  (** events fired, across all axioms *)
  mon_axioms : monitor_axiom list;
  mon_skipped : (string * string) list;  (** axiom, reason *)
}

(** The store's monitor status — the typed counterpart of the
    protocol's [monitor] op. Errors when no monitors are attached. *)
val monitor : t -> (monitor_status, Error.t) result

(** Subscribe the callback to the store's monitor events — the typed
    counterpart of the protocol's [subscribe] op. The callback runs on
    the committing thread after each violating commit published. Errors
    when no monitors are attached. *)
val subscribe : t -> (Monitor.event list -> unit) -> (unit, Error.t) result
