(** The [fds serve] wire protocol.

    A frame is a decimal byte length, a newline, the payload (one JSON
    document), and a newline. Requests are objects
    [{"id": <any>, "op": <string>, ...}]; responses echo the [id] and
    carry [{"ok": true, "result": ...}] or
    [{"ok": false, "error": ...}] with the error rendered by
    {!Fdbs_kernel.Error.to_json}. Payloads are serialized with the
    kernel's deterministic {!Fdbs_kernel.Json.to_string}, so responses
    are byte-stable across runs.

    Operations: [ping], [run] (["calls"]: array of call strings or
    [{"proc", "args"}] objects), [query] (["wff"]), [eval] (["term"],
    optional ["trace"]), [explain], [begin], [commit], [rollback],
    [state], [stats], [replay] (["journal"]), [shutdown]. *)

open Fdbs_kernel
open Fdbs_rpr

val value_to_json : Value.t -> Json.t
val value_of_json : Json.t -> Value.t option

(** Relations as arrays of tuples (name-sorted), scalars as a flat
    object. *)
val db_to_json : Db.t -> Json.t

(** The CLI's call syntax: [name(arg, ...)], integer literals parsed as
    integers, everything else a symbolic constant. *)
val parse_call : string -> (Journal.call, Error.t) result

val call_of_json : Json.t -> (Journal.call, Error.t) result

(** [read_frame ic] is the next payload, [None] on a clean end of
    stream. Raises {!Fdbs_kernel.Error.Error} on a malformed frame. *)
val read_frame : in_channel -> string option

val write_frame : out_channel -> string -> unit

type request = {
  id : Json.t;  (** echoed verbatim in the response *)
  op : string;
  body : Json.t;  (** the whole request object *)
}

val request_of_string : string -> (request, Error.t) result
val ok_response : id:Json.t -> Json.t -> string
val error_response : id:Json.t -> Error.t -> string

type reply =
  | Reply of string
  | Final of string  (** reply, then shut the server down *)

(** Execute one request against a session. Never raises: every failure
    becomes an [{"ok": false}] response. *)
val handle : Session.t -> request -> reply
