(** The [fds serve] wire protocol.

    A frame is a decimal byte length, a newline, the payload (one JSON
    document), and a newline. Requests are objects
    [{"id": <any>, "op": <string>, ...}]; responses echo the [id] and
    carry [{"ok": true, "result": ...}] or
    [{"ok": false, "error": ...}] with the error rendered by
    {!Fdbs_kernel.Error.to_json}. Payloads are serialized with the
    kernel's deterministic {!Fdbs_kernel.Json.to_string}, so responses
    are byte-stable across runs.

    Operations: [ping], [run] (["calls"]: array of call strings or
    [{"proc", "args"}] objects), [query] (["wff"]), [eval] (["term"],
    optional ["trace"]), [explain], [begin], [commit], [rollback],
    [state], [stats], [replay] (["journal"]), [shutdown], and — served
    by replication leaders only — [fetch] (["from"] offset, ["epoch"]):
    the committed entries past the offset, a heartbeat when there are
    none, or the leader's snapshot when the offset predates its
    truncation base. On a follower the write ops ([run], [begin],
    [commit], [rollback], [replay]) are rejected with a structured
    [Read_only] error. *)

open Fdbs_kernel
open Fdbs_rpr

val value_to_json : Value.t -> Json.t
val value_of_json : Json.t -> Value.t option

(** Relations as arrays of tuples (name-sorted), scalars as a flat
    object. *)
val db_to_json : Db.t -> Json.t

(** The inverse, against a schema — how a follower decodes a leader
    snapshot shipped inside a fetch response. *)
val db_of_json : schema:Schema.t -> Json.t -> (Db.t, Error.t) result

(** The CLI's call syntax: [name(arg, ...)], integer literals parsed as
    integers, everything else a symbolic constant. *)
val parse_call : string -> (Journal.call, Error.t) result

val call_of_json : Json.t -> (Journal.call, Error.t) result

(** [read_frame ic] is the next payload, [None] on a clean end of
    stream. Raises {!Fdbs_kernel.Error.Error} on a malformed frame. *)
val read_frame : in_channel -> string option

val write_frame : out_channel -> string -> unit

type request = {
  id : Json.t;  (** echoed verbatim in the response *)
  op : string;
  body : Json.t;  (** the whole request object *)
}

val request_of_string : string -> (request, Error.t) result
val ok_response : id:Json.t -> Json.t -> string
val error_response : id:Json.t -> Error.t -> string

(** What the serving process is, per store: a standalone server (every
    op allowed, no [fetch]), a leader (serves [fetch] from its journal
    log), or a follower (read-only: writes rejected with a structured
    [Read_only] error). *)
type role =
  | Standalone
  | Leader of Replication.log
  | Follower of Replica.t

(** The [fetch] request frame a follower sends: from its last applied
    offset, carrying its highest seen epoch. *)
val fetch_request : id:Json.t -> from:int -> epoch:int -> string

(** A parsed [fetch] response. *)
type fetched = {
  f_epoch : int;  (** the leader's current epoch *)
  f_base : int;  (** the leader's truncation base *)
  f_last : int;  (** the leader's last committed offset *)
  f_entries : Journal.stamped list;  (** empty = heartbeat *)
  f_snapshot : Replication.snapshot option;
      (** sent instead of entries when the follower is behind the
          leader's truncation base *)
}

val fetched_of_response :
  schema:Schema.t -> string -> (fetched, Error.t) result

type reply =
  | Reply of string
  | Final of string  (** reply, then shut the server down *)

(** Execute one request against a session, as [role] (default
    {!Standalone}). Never raises — every failure becomes an
    [{"ok": false}] response — except for an armed [replication.fetch]
    fault, which propagates so the server can cut the stream. *)
val handle : ?role:role -> Session.t -> request -> reply
