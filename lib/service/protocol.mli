(** The [fds serve] wire protocol.

    A frame is a decimal byte length, a newline, the payload (one JSON
    document), and a newline. Requests are objects
    [{"id": <any>, "op": <string>, ...}]; responses echo the [id] and
    carry [{"ok": true, "result": ...}] or
    [{"ok": false, "error": ...}] with the error rendered by
    {!Fdbs_kernel.Error.to_json}. Payloads are serialized with the
    kernel's deterministic {!Fdbs_kernel.Json.to_string}, so responses
    are byte-stable across runs.

    Operations: [ping], [hello] (optional ["version"]; the v2
    handshake — answers the negotiated version, the op set for the
    connection's role, and the server's feature flags; clients that
    never send it are v1 and served unchanged), [run] (["calls"]:
    array of call strings or [{"proc", "args"}] objects), [query]
    (["wff"]), [eval] (["term"], optional ["trace"]), [explain],
    [begin], [commit], [rollback], [state], [stats], [monitor] (the
    attached streaming monitors' status: per-axiom kind/depth/
    violation counts and the skipped axioms), [subscribe] (handled by
    the server: switches the connection into event streaming — see
    below), [replay] (["journal"]), [batch] (["requests"]: non-empty
    array of request objects executed in order, answered as one array —
    [batch], [shutdown], [attach], [subscribe], and [fetch] may not
    nest), [attach] (["namespace"], optional ["token"]; handled by the
    server, which swaps the connection onto that namespace's store),
    [shutdown], and — served by replication leaders only — [fetch]
    (["from"] offset, ["epoch"]): the committed entries past the
    offset, a heartbeat when there are none, or the leader's snapshot
    when the offset predates its truncation base. On a follower the
    write ops ([run], [begin], [commit], [rollback], [replay]) are
    rejected with a structured [Read_only] error, and [attach] with
    [Read_only] too (namespaces live on the leader).

    {b Event frames.} A [subscribe]d connection receives, besides its
    replies, server-pushed frames tagged with an ["event"] member (and
    no ["id"]/["ok"]):
    [{"event": "violation", "monitor": <axiom>, "kind":
    "static"|"transition", "state": <n>}] when a streaming monitor
    fires, and [{"event": "heartbeat", "commits": <n>, "violations":
    <n>}] immediately after subscribing (so clients can sync their
    counters). Use {!classify_frame} to tell the streams apart. *)

open Fdbs_kernel
open Fdbs_rpr

val value_to_json : Value.t -> Json.t
val value_of_json : Json.t -> Value.t option

(** Relations as arrays of tuples (name-sorted), scalars as a flat
    object. *)
val db_to_json : Db.t -> Json.t

(** The inverse, against a schema — how a follower decodes a leader
    snapshot shipped inside a fetch response. *)
val db_of_json : schema:Schema.t -> Json.t -> (Db.t, Error.t) result

(** The CLI's call syntax: [name(arg, ...)], integer literals parsed as
    integers, everything else a symbolic constant. *)
val parse_call : string -> (Journal.call, Error.t) result

val call_of_json : Json.t -> (Journal.call, Error.t) result

(** [read_frame ic] is the next payload, [None] on a clean end of
    stream. Blank header lines are skipped, not treated as EOF. Raises
    {!Fdbs_kernel.Error.Error} on a malformed frame. *)
val read_frame : in_channel -> string option

(** Buffer a frame without flushing — callers pipelining several
    responses cork them and flush once. *)
val output_frame : out_channel -> string -> unit

(** {!output_frame} followed by a flush. *)
val write_frame : out_channel -> string -> unit

(** A buffered frame reader over a raw descriptor that can distinguish
    "nothing buffered or immediately readable" from "waiting for the
    next request" — the server's pipelining primitive. *)
module Reader : sig
  type t

  val create : ?size:int -> Unix.file_descr -> t

  (** The next frame. [block:false] consumes only bytes already
      buffered or immediately readable and answers [`Pending] when the
      pipeline is drained; [block:true] waits. [`Eof] is a clean end of
      stream. Raises {!Fdbs_kernel.Error.Error} on a malformed
      frame. *)
  val next : t -> block:bool -> [ `Frame of string | `Eof | `Pending ]
end

type request = {
  id : Json.t;  (** echoed verbatim in the response *)
  op : string;
  body : Json.t;  (** the whole request object *)
}

(** On error, the carried {!Fdbs_kernel.Json.t} is the request id when
    the document parsed well enough to have one ([Null] otherwise), so
    error replies can echo it. *)
val request_of_json : Json.t -> (request, Json.t * Error.t) result

val request_of_string : string -> (request, Json.t * Error.t) result
val ok_response : id:Json.t -> Json.t -> string
val error_response : id:Json.t -> Error.t -> string

(** What the serving process is, per store: a standalone server (every
    op allowed, no [fetch]), a leader (serves [fetch] from its journal
    log), or a follower (read-only: writes rejected with a structured
    [Read_only] error). *)
type role =
  | Standalone
  | Leader of Replication.log
  | Follower of Replica.t

(** The [fetch] request frame a follower sends: from its last applied
    offset, carrying its highest seen epoch. *)
val fetch_request : id:Json.t -> from:int -> epoch:int -> string

(** A parsed [fetch] response. *)
type fetched = {
  f_epoch : int;  (** the leader's current epoch *)
  f_base : int;  (** the leader's truncation base *)
  f_last : int;  (** the leader's last committed offset *)
  f_entries : Journal.stamped list;  (** empty = heartbeat *)
  f_snapshot : Replication.snapshot option;
      (** sent instead of entries when the follower is behind the
          leader's truncation base *)
}

val fetched_of_response :
  schema:Schema.t -> string -> (fetched, Error.t) result

(** The protocol version this build speaks. Version 1 is the original
    request/reply protocol; version 2 adds the [hello] handshake, the
    [monitor] op, and event frames on [subscribe]d connections. *)
val protocol_version : int

(** The ops the server answers for the given role — the [hello]
    reply's ["ops"] array. [attach] and [subscribe] are
    connection-level (intercepted by the server before dispatch). *)
val supported_ops : role:role -> string list

(** A monitor status as the [monitor] op's result object. *)
val monitor_status_to_json : Session.monitor_status -> Json.t

(** The serialized [{"event": "violation", ...}] frame for a monitor
    event, ready for {!output_frame}. *)
val violation_frame : Monitor.event -> string

(** The serialized [{"event": "heartbeat", ...}] frame sent when a
    connection subscribes. *)
val heartbeat_frame : commits:int -> violations:int -> string

(** Classify an incoming frame on a subscribed connection: [`Event]
    carries the ["event"] tag ("violation", "heartbeat"), [`Reply] is
    an ordinary response. *)
val classify_frame : Json.t -> [ `Event of string | `Reply ]

type reply =
  | Reply of string
  | Final of string  (** reply, then shut the server down *)

(** Decode a wire error object (the ["error"] member of an
    [{"ok": false}] response) back into a structured error. *)
val error_of_json : Json.t -> Error.t

(** Execute one request against a session, as [role] (default
    {!Standalone}). [admit] is the server's admission hook, charged
    once per sub-request of a [batch] (an [Error] becomes that
    sub-request's [Overloaded] reply). [features] is the server's
    feature-flag list, echoed in [hello] replies. Never raises — every
    failure becomes an [{"ok": false}] response — except for an armed
    [replication.fetch] fault, which propagates so the server can cut
    the stream. *)
val handle :
  ?role:role ->
  ?admit:(unit -> (unit, Error.t) result) ->
  ?features:string list ->
  Session.t ->
  request ->
  reply
