(** The follower side of replication: apply committed leader entries
    through the ordinary {!Session} machinery, snapshot periodically,
    truncate the local journal behind each durable snapshot, and
    crash-recover from snapshot + journal tail.

    A replica owns a follower store whose configuration is
    transactional and journaled: every applied entry re-runs as a
    checked transaction ({!Session.run}) and lands in the follower's
    own journal, so the follower's disk state is itself a recoverable
    (snapshot, tail) pair and a restarted follower resumes from where
    it left off — replaying only the entries since its last snapshot.

    Snapshot failures (including the [replication.snapshot] fault) are
    survivable: the replica keeps applying and retries at the next
    boundary, with the previous snapshot still in place; recovery just
    replays a longer tail. *)

open Fdbs_kernel
open Fdbs_rpr

type t = {
  session : Session.t;  (** the apply session on the follower store *)
  journal : string;  (** the follower's own journal *)
  snapshot_every : int;  (** snapshot/truncate period, in entries *)
  mutable applied : int;  (** absolute offset of the last applied entry *)
  mutable ep : int;  (** highest epoch seen *)
  mutable snap_offset : int;  (** offset of the last durable snapshot *)
  mutable leader_last : int;  (** leader's last offset, as last heard *)
  mutable degraded : bool;  (** leader unreachable: read-only service *)
  mutable recovered : int;  (** entries re-applied by the last recovery *)
}

let c_applied = Metrics.counter "replication.entries_applied"
let c_snapshots = Metrics.counter "replication.snapshots"
let c_snapshot_failures = Metrics.counter "replication.snapshot_failures"
let c_lag = Metrics.counter "replication.lag"

let applied (r : t) = r.applied
let epoch (r : t) = r.ep
let snapshot_offset (r : t) = r.snap_offset
let recovered_entries (r : t) = r.recovered
let degraded (r : t) = r.degraded
let session (r : t) = r.session

let set_degraded (r : t) d = r.degraded <- d

(** Record the leader's last known offset; the lag gauge
    ([replication.lag]) tracks [leader_last - applied]. *)
let note_leader (r : t) (last : int) =
  r.leader_last <- max r.leader_last last;
  Metrics.set c_lag (max 0 (r.leader_last - r.applied))

let repl_error code fmt =
  Fmt.kstr (fun m -> Error.make Error.Replay code m) fmt

(** Build a replica over [store], recovering from the follower's own
    journal (and the snapshot next to it) if present: bounded recovery
    — the snapshot installs and only the tail re-runs. *)
let recover ?(snapshot_every = 64) ~(store : Session.Store.t)
    ~(journal : string) () : (t, Error.t) result =
  let session = Session.on_store store in
  let fresh applied ep snap_offset recovered =
    {
      session;
      journal;
      snapshot_every = max 1 snapshot_every;
      applied;
      ep;
      snap_offset;
      leader_last = applied;
      degraded = false;
      recovered;
    }
  in
  if not (Sys.file_exists journal) then Ok (fresh 0 0 0 0)
  else
    match Session.replay session journal with
    | Result.Error e -> Result.Error e
    | Ok r ->
      Ok
        (fresh r.Session.rep_offset r.Session.rep_epoch
           (Option.value ~default:0 r.Session.rep_snapshot)
           r.Session.rep_entries)

(* Snapshot the current follower state and truncate the journal behind
   it. Failures leave the previous (snapshot, journal) pair intact and
   are survivable — the caller keeps applying. *)
let maybe_snapshot (r : t) : unit =
  if r.applied - r.snap_offset >= r.snapshot_every then (
    let snap =
      {
        Replication.snap_epoch = r.ep;
        snap_offset = r.applied;
        snap_db = Session.db r.session;
      }
    in
    match Replication.save_snapshot (Replication.snapshot_path r.journal) snap with
    | Result.Error _ -> Metrics.incr c_snapshot_failures
    | Ok () ->
      r.snap_offset <- r.applied;
      Metrics.incr c_snapshots;
      (* truncation is now legal: the snapshot is durable. A failed
         truncate only means a longer journal; recovery still starts
         from the snapshot. *)
      (match Journal.truncate r.journal ~base:r.applied ~epoch:r.ep [] with
       | Ok () -> ()
       | Result.Error _ -> Metrics.incr c_snapshot_failures))

(** Apply a batch of fetched leader entries, in order. Each entry
    re-runs as a checked transaction on the follower store (journaled
    to the follower's journal); duplicates (offset ≤ applied) are
    skipped, gaps and epoch regressions are structured errors. The
    [replication.apply] fault site fires before each entry and leaves
    it unapplied — it retries on the next fetch. *)
let apply (r : t) (entries : Journal.stamped list) : (unit, Error.t) result =
  let rec go = function
    | [] -> Ok ()
    | (s : Journal.stamped) :: rest ->
      if s.Journal.offset <= r.applied then go rest
      else if s.Journal.offset > r.applied + 1 then
        Result.Error
          (repl_error Error.Replay_mismatch
             "replication gap: expected offset %d, got %d" (r.applied + 1)
             s.Journal.offset)
      else if s.Journal.ep < r.ep then
        Result.Error
          (repl_error Error.Stale_epoch
             "entry %d carries epoch %d but the replica has seen epoch %d"
             s.Journal.offset s.Journal.ep r.ep)
      else (
        match Fault.hit "replication.apply" with
        | exception Fault.Injected site ->
          Result.Error
            (Error.makef Error.Replay (Error.Fault_injected site)
               "fault injected at %s" site)
        | () ->
          (* a bumped epoch is stamped into the follower's journal
             before the entry it covers, mirroring the leader's file *)
          if s.Journal.ep > r.ep then (
            (match Journal.append_epoch r.journal s.Journal.ep with
             | Ok () -> ()
             | Result.Error _ -> ());
            r.ep <- s.Journal.ep);
          (match Session.run r.session s.Journal.entry.Journal.calls with
           | Ok _ ->
             r.applied <- s.Journal.offset;
             Metrics.incr c_applied;
             Metrics.set c_lag (max 0 (r.leader_last - r.applied));
             maybe_snapshot r;
             go rest
           | Result.Error f ->
             Result.Error
               {
                 f.Session.fail_error with
                 Error.context =
                   ("offset", string_of_int s.Journal.offset)
                   :: f.Session.fail_error.Error.context;
               }))
  in
  go entries

(** Install a leader snapshot (sent when the follower's offset fell
    behind the leader's truncation base): persist it as the follower's
    own snapshot, truncate the local journal behind it, and re-install
    the state through {!Session.replay} — [fds replay] as the snapshot
    installer. *)
let install_snapshot (r : t) (snap : Replication.snapshot) :
  (unit, Error.t) result =
  if snap.Replication.snap_offset <= r.applied then Ok ()
  else
    match
      Replication.save_snapshot (Replication.snapshot_path r.journal) snap
    with
    | Result.Error e -> Result.Error e
    | Ok () -> (
        match
          Journal.truncate r.journal ~base:snap.Replication.snap_offset
            ~epoch:snap.Replication.snap_epoch []
        with
        | Result.Error e -> Result.Error e
        | Ok () -> (
            match Session.replay r.session r.journal with
            | Result.Error e -> Result.Error e
            | Ok rep ->
              r.applied <- rep.Session.rep_offset;
              r.ep <- max r.ep rep.Session.rep_epoch;
              r.snap_offset <- snap.Replication.snap_offset;
              Metrics.incr c_snapshots;
              Metrics.set c_lag (max 0 (r.leader_last - r.applied));
              Ok ()))
