(* The fds serve daemon: a socket server speaking Protocol frames, one
   session per connection over a single shared store. The main domain
   accepts connections and queues them; a small set of worker domains
   pops the queue and drives one connection each to completion. All
   database mutation is serialized by the store lock inside Session, so
   concurrent connections observe serializable transactions.

   Shutdown is cooperative: a "shutdown" request, SIGINT or SIGTERM
   sets the stop flag; the accept loop (a 0.2s select poll) notices,
   the queue is drained, workers join, and the socket is closed and
   unlinked. Trace emission is the caller's concern (the CLI installs
   its usual at_exit observer). *)

open Fdbs_kernel

type listen = [ `Unix of string | `Tcp of string * int ]

let address : listen -> Unix.sockaddr = function
  | `Unix path -> Unix.ADDR_UNIX path
  | `Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let describe : listen -> string = function
  | `Unix path -> path
  | `Tcp (host, port) -> Fmt.str "%s:%d" host port

type t = {
  store : Session.Store.t;
  sock : Unix.file_descr;
  stop : bool Atomic.t;
  queue : Unix.file_descr Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  connections : int Atomic.t;
  requests : int Atomic.t;
}

type stats = {
  served_connections : int;
  served_requests : int;
}

let request_stop server =
  Atomic.set server.stop true;
  Mutex.lock server.qlock;
  Condition.broadcast server.qcond;
  Mutex.unlock server.qlock

let serve_connection server fd =
  let session = Session.on_store server.store in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match Protocol.read_frame ic with
    | None -> ()
    | Some payload ->
      Atomic.incr server.requests;
      (match Protocol.request_of_string payload with
       | Result.Error e ->
         Protocol.write_frame oc (Protocol.error_response ~id:Json.Null e);
         loop ()
       | Ok req ->
         (match
            Trace.with_span ~cat:"service"
              ~args:[ ("op", req.Protocol.op) ]
              "service.request"
              (fun () -> Protocol.handle session req)
          with
          | Protocol.Reply r ->
            Protocol.write_frame oc r;
            loop ()
          | Protocol.Final r ->
            Protocol.write_frame oc r;
            request_stop server))
  in
  (try loop () with
   | Error.Error e ->
     (* malformed frame: report once, then drop the connection *)
     (try Protocol.write_frame oc (Protocol.error_response ~id:Json.Null e)
      with Sys_error _ -> ())
   | End_of_file | Sys_error _ -> ());
  Session.close session;
  close_out_noerr oc

let worker server () =
  let rec loop () =
    Mutex.lock server.qlock;
    while Queue.is_empty server.queue && not (Atomic.get server.stop) do
      Condition.wait server.qcond server.qlock
    done;
    let job = Queue.take_opt server.queue in
    Mutex.unlock server.qlock;
    match job with
    | None -> ()
    | Some fd ->
      serve_connection server fd;
      loop ()
  in
  loop ()

let accept_loop server =
  while not (Atomic.get server.stop) do
    match Unix.select [ server.sock ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ ->
      (match Unix.accept server.sock with
       | exception Unix.Unix_error (_, _, _) -> ()
       | fd, _ ->
         Atomic.incr server.connections;
         Mutex.lock server.qlock;
         Queue.push fd server.queue;
         Condition.signal server.qcond;
         Mutex.unlock server.qlock)
  done

let io_error fmt =
  Fmt.kstr (fun m -> Error.make Error.Io Error.Io_failure m) fmt

let serve ?(workers = 2) ?spec ?(config = Config.default) ?(ready = fun () -> ())
    (listen : listen) schema : (stats, Error.t) result =
  match Session.Store.create ~config ?spec schema with
  | Result.Error e -> Result.Error e
  | Ok store ->
    let addr = address listen in
    let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    (match Unix.bind sock addr with
     | exception Unix.Unix_error (err, _, _) ->
       Unix.close sock;
       Result.Error
         (io_error "cannot bind %s: %s" (describe listen)
            (Unix.error_message err))
     | () ->
       Unix.listen sock 16;
       let server =
         {
           store;
           sock;
           stop = Atomic.make false;
           queue = Queue.create ();
           qlock = Mutex.create ();
           qcond = Condition.create ();
           connections = Atomic.make 0;
           requests = Atomic.make 0;
         }
       in
       Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
       let on_signal = Sys.Signal_handle (fun _ -> request_stop server) in
       Sys.set_signal Sys.sigint on_signal;
       Sys.set_signal Sys.sigterm on_signal;
       (* workers record trace spans into their own domain-local
          collector; collect them with [Trace.isolated] and graft them
          into the main domain's trace after the join, the same dance
          {!Fdbs_kernel.Pool} does for its chunks *)
       let domains =
         List.init (max 1 workers) (fun _ ->
             Stdlib.Domain.spawn (fun () ->
                 snd (Trace.isolated (worker server))))
       in
       ready ();
       accept_loop server;
       request_stop server;
       List.iter
         (fun d -> Trace.graft (Stdlib.Domain.join d))
         domains;
       Unix.close sock;
       (match listen with
        | `Unix path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
        | `Tcp _ -> ());
       Ok
         {
           served_connections = Atomic.get server.connections;
           served_requests = Atomic.get server.requests;
         })
