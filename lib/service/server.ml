(* The fds serve daemon: a socket server speaking Protocol frames, one
   session per connection over a shared store. The main domain is a
   dispatcher: it accepts connections and selects over the parked
   (quiet) ones, moving each to the ready queue the moment it has
   input; worker domains pop ready connections, drain every buffered
   frame into one corked flush, and hand the quiet connection back.
   Workers never block on a socket, so any number of open connections
   multiplex over a small pool. All database mutation is serialized by
   the store lock inside Session, so concurrent connections observe
   serializable transactions.

   Replication: with a journal the server boots as a *leader* — it
   recovers the journal's committed state, stamps a fresh epoch, and
   serves the `fetch` op from an incremental log view; journal appends
   run with fsync for power-loss durability. With [?follow] it boots as
   a *follower*: it recovers from its own snapshot + journal tail, then
   a dedicated domain streams committed entries from the leader and
   applies them through the Session machinery, while client
   connections get read-only service (writes are rejected with a
   structured Read_only error). Leader death degrades the follower to
   read-only-and-reconnecting instead of an outage.

   Shutdown is cooperative: a "shutdown" request, SIGINT or SIGTERM
   sets the stop flag; the accept loop (a 0.2s select poll) notices,
   the queue is drained, workers (and the follow domain) join, and the
   socket is closed and unlinked. Trace emission is the caller's
   concern (the CLI installs its usual at_exit observer). *)

open Fdbs_kernel
open Fdbs_rpr

type listen = [ `Unix of string | `Tcp of string * int ]

let address : listen -> Unix.sockaddr = function
  | `Unix path -> Unix.ADDR_UNIX path
  | `Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let describe : listen -> string = function
  | `Unix path -> path
  | `Tcp (host, port) -> Fmt.str "%s:%d" host port

(* One client connection. A connection is owned by exactly one party at
   a time: the ready queue, the worker serving it, or the dispatcher's
   parked watch set (via the idle hand-back list). *)
type conn = {
  fd : Unix.file_descr;
  reader : Protocol.Reader.t;
  oc : out_channel;
  wlock : Mutex.t;
      (* serializes writes to [oc]: the serving worker's replies and
         event frames pushed by committing workers interleave at frame
         granularity. Never held across Session calls (the store lock
         nests inside it, not around it). *)
  session : Session.t ref;  (* rebound by [attach] *)
  bucket : Budget.Bucket.t option;  (* per-connection request admission *)
  stopping : bool ref;  (* this connection carried a shutdown request *)
}

let with_wlock conn f =
  Mutex.lock conn.wlock;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.wlock) f

type t = {
  store : Session.Store.t;
  schema : Schema.t;
  spec : Fdbs_algebra.Spec.t option;
  config : Config.t;  (* the adjusted (post-role) configuration *)
  auth : string option;  (* token required by [attach], when set *)
  max_queue : int;  (* accepted connections queued beyond this are shed *)
  role : Protocol.role;
  sock : Unix.file_descr;
  stop : bool Atomic.t;
  queue : conn Queue.t;  (* connections with input waiting for a worker *)
  qlock : Mutex.t;
  qcond : Condition.t;
  idle : conn list ref;  (* drained connections headed back to the watch
                            set; guarded by [qlock] *)
  wake_r : Unix.file_descr;  (* self-pipe: workers poke the dispatcher *)
  wake_w : Unix.file_descr;
  namespaces : (string, Session.Store.t) Hashtbl.t;
  ns_lock : Mutex.t;
  subscribers : (Unix.file_descr, conn) Hashtbl.t;
      (* connections that asked for event frames; guarded by [sub_lock] *)
  sub_lock : Mutex.t;
  connections : int Atomic.t;
  requests : int Atomic.t;
}

type stats = {
  served_connections : int;
  served_requests : int;
}

let h_request_us = Metrics.histogram "service.request_us"
let c_workers = Metrics.counter "service.workers"
let c_bad_frames = Metrics.counter "service.bad_frames"
let c_throttled = Metrics.counter "service.throttled"
let c_shed = Metrics.counter "service.shed"
let c_attached = Metrics.counter "service.attached"
let c_subscribed = Metrics.counter "service.subscribed"
let c_events_pushed = Metrics.counter "service.events_pushed"

let wake_byte = Bytes.of_string "x"

let wake server =
  try ignore (Unix.write server.wake_w wake_byte 0 1)
  with Unix.Unix_error _ -> ()

let request_stop server =
  Atomic.set server.stop true;
  wake server;
  Mutex.lock server.qlock;
  Condition.broadcast server.qcond;
  Mutex.unlock server.qlock

let bad_request fmt =
  Fmt.kstr (fun m -> Error.make Error.Parse Error.Exec_failure m) fmt

(* ------------------------------------------------------------------ *)
(* multi-tenant namespaces                                             *)
(* ------------------------------------------------------------------ *)

let valid_namespace name =
  name <> ""
  && String.length name <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-' || c = '.')
       name

(* Find or create the namespace's store. Every namespace is an
   independent store — own state, own domain, own journal
   ([base ^ "." ^ ns], recovered at first attach) — but all of them
   share the process-wide planner cache: plan keys mix the schema
   fingerprint, so tenants with identical schemas reuse each other's
   compiled plans. *)
let namespace_store server ns : (Session.Store.t, Error.t) result =
  Mutex.lock server.ns_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock server.ns_lock) @@ fun () ->
  match Hashtbl.find_opt server.namespaces ns with
  | Some st -> Ok st
  | None ->
    let ( let* ) = Result.bind in
    let config =
      match server.config.Config.journal with
      | None -> server.config
      | Some base -> { server.config with Config.journal = Some (base ^ "." ^ ns) }
    in
    let* st = Session.Store.create ~config ?spec:server.spec server.schema in
    let* () =
      match config.Config.journal with
      | Some journal when Sys.file_exists journal ->
        let boot = Session.on_store st in
        let* replayed = Session.replay boot journal in
        (match replayed.Session.rep_torn with
         | Some what -> Fmt.epr "fds: warning: journal %s: %s@." journal what
         | None -> ());
        Ok ()
      | _ -> Ok ()
    in
    Hashtbl.add server.namespaces ns st;
    Metrics.incr c_attached;
    Ok st

(* The [attach] op lives here rather than in Protocol.handle because it
   swaps the connection onto another store's session. Followers reject
   it (namespaces live on the leader); with [--auth-token] the request
   must carry the matching ["token"]. *)
let handle_attach server (req : Protocol.request) :
  (Session.Store.t * string, Error.t) result =
  let ( let* ) = Result.bind in
  let* () =
    match server.role with
    | Protocol.Follower _ ->
      Result.Error
        (Error.make
           ~context:[ ("op", "attach") ]
           Error.Exec Error.Read_only
           "read-only replica: attach must go to the leader")
    | _ -> Ok ()
  in
  let* () =
    match server.auth with
    | None -> Ok ()
    | Some expected ->
      let token =
        Option.bind (Json.field "token" req.Protocol.body) Json.to_string_opt
      in
      if token = Some expected then Ok ()
      else
        Result.Error
          (Error.make Error.Exec Error.Unauthorized
             "attach: missing or invalid token")
  in
  let* ns =
    match
      Option.bind (Json.field "namespace" req.Protocol.body) Json.to_string_opt
    with
    | None -> Result.Error (bad_request "attach needs a \"namespace\" string")
    | Some ns when not (valid_namespace ns) ->
      Result.Error
        (bad_request
           "invalid namespace %S: up to 64 characters of [A-Za-z0-9_.-]" ns)
    | Some ns -> Ok ns
  in
  let* st = namespace_store server ns in
  Ok (st, ns)

(* ------------------------------------------------------------------ *)
(* monitor subscriptions                                               *)
(* ------------------------------------------------------------------ *)

(* Fan a batch of monitor events out to every subscribed connection as
   violation frames. Runs on the committing worker (the store sink is
   called from the commit's publish phase), so pushes are short
   buffered writes; a subscriber whose socket fails is dropped from
   the registry and left for the dispatcher to reap. *)
let broadcast_events server (events : Monitor.event list) =
  Mutex.lock server.sub_lock;
  let subs = Hashtbl.fold (fun _ c acc -> c :: acc) server.subscribers [] in
  Mutex.unlock server.sub_lock;
  if subs <> [] then begin
    let frames = List.map Protocol.violation_frame events in
    List.iter
      (fun conn ->
        match
          with_wlock conn (fun () ->
              List.iter (Protocol.output_frame conn.oc) frames;
              flush conn.oc)
        with
        | () -> Metrics.add c_events_pushed (List.length frames)
        | exception Sys_error _ ->
          Mutex.lock server.sub_lock;
          Hashtbl.remove server.subscribers conn.fd;
          Mutex.unlock server.sub_lock)
      subs
  end

(* The [subscribe] op lives here rather than in Protocol.handle because
   it changes what the connection receives from now on. The reply is
   followed by one deterministic heartbeat frame, so a client can sync
   its counters before the first violation arrives. *)
let handle_subscribe server conn (req : Protocol.request) : unit =
  let id = req.Protocol.id in
  match Session.monitor !(conn.session) with
  | Result.Error e ->
    with_wlock conn (fun () ->
        Protocol.output_frame conn.oc (Protocol.error_response ~id e))
  | Ok status ->
    Mutex.lock server.sub_lock;
    Hashtbl.replace server.subscribers conn.fd conn;
    Mutex.unlock server.sub_lock;
    Metrics.incr c_subscribed;
    with_wlock conn (fun () ->
        Protocol.output_frame conn.oc
          (Protocol.ok_response ~id
             (Json.Obj
                [
                  ("subscribed", Json.Bool true);
                  ("theory", Json.Str status.Session.mon_theory);
                ]));
        Protocol.output_frame conn.oc
          (Protocol.heartbeat_frame ~commits:status.Session.mon_commits
             ~violations:status.Session.mon_violations))

let unsubscribe server conn =
  Mutex.lock server.sub_lock;
  Hashtbl.remove server.subscribers conn.fd;
  Mutex.unlock server.sub_lock

(* ------------------------------------------------------------------ *)
(* connections                                                         *)
(* ------------------------------------------------------------------ *)

(* Connections are multiplexed, not owned: a worker serves a *ready*
   connection by draining every frame the client has already sent
   (answering into the output buffer), flushing once the pipeline is
   empty, and handing the quiet connection back to the dispatcher's
   select set. A worker therefore never blocks on a socket — a client
   may hold any number of open connections (`fds client --pool`, or
   simply an idle session) without starving the pool, and a pipelined
   burst of N requests gets N responses in order behind one corked
   flush. *)

let new_conn server fd =
  {
    fd;
    reader = Protocol.Reader.create fd;
    oc = Unix.out_channel_of_descr fd;
    wlock = Mutex.create ();
    session = ref (Session.on_store server.store);
    bucket =
      (match server.config.Config.rate_limit with
      | None -> None
      | Some rate ->
        Some
          (Budget.Bucket.make ?burst:server.config.Config.rate_burst ~rate ()));
    stopping = ref false;
  }

let admit server conn () =
  match conn.bucket with
  | None ->
    Atomic.incr server.requests;
    Ok ()
  | Some b ->
    (match Budget.Bucket.take b 1.0 with
     | Ok () ->
       Atomic.incr server.requests;
       Ok ()
     | Result.Error wait ->
       Metrics.incr c_throttled;
       Result.Error
         (Error.overloaded ~retry_after_s:wait
            "connection overloaded: request rate exceeded"))

(* The [hello] feature flags for this connection: what the server
   layers on top of the per-request protocol. *)
let features_of server conn =
  (match server.role with
   | Protocol.Follower _ -> []
   | _ -> [ "namespaces" ])
  @
  match Session.Store.monitors (Session.store !(conn.session)) with
  | Some _ -> [ "monitors"; "subscribe" ]
  | None -> []

let handle_frame server conn payload =
  let oc = conn.oc in
  let write r = with_wlock conn (fun () -> Protocol.output_frame oc r) in
  match Protocol.request_of_string payload with
  | Result.Error (id, e) ->
    (* a parse failure is the client's malformed frame, not a served
       request: account it separately *)
    Metrics.incr c_bad_frames;
    write (Protocol.error_response ~id e)
  | Ok req ->
    let id = req.Protocol.id in
    (* a batch admits (and counts) each sub-request inside the
       handler instead of paying once for the envelope *)
    (match if req.Protocol.op = "batch" then Ok () else admit server conn ()
     with
     | Result.Error e -> write (Protocol.error_response ~id e)
     | Ok () ->
       (match req.Protocol.op with
        | "attach" ->
          (match handle_attach server req with
           | Result.Error e -> write (Protocol.error_response ~id e)
           | Ok (st, ns) ->
             Session.close !(conn.session);
             (* a subscription follows the session it was made on, not
                the connection: attaching elsewhere drops it *)
             unsubscribe server conn;
             conn.session := Session.on_store st;
             write
               (Protocol.ok_response ~id
                  (Json.Obj [ ("namespace", Json.Str ns) ])))
        | "subscribe" -> handle_subscribe server conn req
        | _ ->
          (match
             (* Per-request budgets are rebuilt inside the handler
                from the store config, so accounting stays exact
                whichever worker domain serves the request; reads
                evaluate against a shared snapshot outside the store
                lock. *)
             let t0 = Mclock.now_us () in
             Fun.protect
               ~finally:(fun () ->
                 Metrics.observe_us h_request_us (Mclock.now_us () -. t0))
               (fun () ->
                 Trace.with_span ~cat:"service"
                   ~args:[ ("op", req.Protocol.op) ]
                   "service.request"
                   (fun () ->
                     Protocol.handle ~role:server.role
                       ~admit:(admit server conn)
                       ~features:(features_of server conn)
                       !(conn.session) req))
           with
           | Protocol.Reply r -> write r
           | Protocol.Final r ->
             write r;
             conn.stopping := true)))

(* [close_out_noerr] flushes buffered replies (the shutdown "bye"
   included) before closing the underlying fd. *)
let close_conn server conn =
  if !(conn.stopping) then request_stop server;
  unsubscribe server conn;
  Session.close !(conn.session);
  close_out_noerr conn.oc

(* Hand a drained connection back to the dispatcher. Data that arrives
   between the worker's last poll and the dispatcher's next select is
   not lost: select is level-triggered, so the fd reports readable the
   moment it is watched. *)
let park server conn =
  Mutex.lock server.qlock;
  server.idle := conn :: !(server.idle);
  Mutex.unlock server.qlock;
  wake server

let serve_ready server conn =
  let step () =
    let rec go () =
      if !(conn.stopping) then `Close
      else
        match Protocol.Reader.next conn.reader ~block:false with
        | `Eof -> `Close
        | `Frame payload ->
          handle_frame server conn payload;
          go ()
        | `Pending ->
          (* pipeline drained: one corked flush, then back to the
             watch set *)
          with_wlock conn (fun () -> flush conn.oc);
          `Park
    in
    try go () with
    | Error.Error e ->
      (* malformed frame: report once, then drop the connection *)
      Metrics.incr c_bad_frames;
      (try
         with_wlock conn (fun () ->
             Protocol.write_frame conn.oc
               (Protocol.error_response ~id:Json.Null e))
       with Sys_error _ -> ());
      `Close
    | End_of_file | Sys_error _ -> `Close
    | Fault.Injected _ ->
      (* an armed replication fault (e.g. replication.fetch) cuts the
         stream mid-exchange: drop the connection without a reply, the
         follower reconnects *)
      `Close
  in
  match step () with
  | `Park -> park server conn
  | `Close -> close_conn server conn

let worker server () =
  let rec loop () =
    Mutex.lock server.qlock;
    while Queue.is_empty server.queue && not (Atomic.get server.stop) do
      Condition.wait server.qcond server.qlock
    done;
    let job = Queue.take_opt server.queue in
    Mutex.unlock server.qlock;
    match job with
    | None -> ()
    | Some conn ->
      if Atomic.get server.stop then close_conn server conn
      else serve_ready server conn;
      loop ()
  in
  loop ()

(* Shed load instead of queueing without bound: a connection accepted
   while the queue is already [max_queue] deep gets one structured
   Overloaded frame (with a retry hint) and is closed — it is never
   parked where no worker will reach it. *)
let shed_connection fd =
  Metrics.incr c_shed;
  let oc = Unix.out_channel_of_descr fd in
  (try
     Protocol.write_frame oc
       (Protocol.error_response ~id:Json.Null
          (Error.overloaded ~retry_after_s:0.1
             "server overloaded: accept queue is full"))
   with Sys_error _ -> ());
  close_out_noerr oc

let enqueue_ready server conn =
  Mutex.lock server.qlock;
  Queue.push conn server.queue;
  Condition.signal server.qcond;
  Mutex.unlock server.qlock

let accept_one server =
  match Unix.accept server.sock with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd, _ ->
    Mutex.lock server.qlock;
    let depth = Queue.length server.queue in
    if depth >= server.max_queue then (
      Mutex.unlock server.qlock;
      shed_connection fd)
    else (
      Atomic.incr server.connections;
      (* straight to the ready queue: the first service pass answers
         whatever the client sent with the connect, or parks it *)
      Queue.push (new_conn server fd) server.queue;
      Condition.signal server.qcond;
      Mutex.unlock server.qlock)

(* The dispatcher: accept new connections and select over the parked
   (quiet) ones, moving each back to the ready queue the moment it has
   input. Workers hand drained connections back through [server.idle]
   and poke [wake_w] so a park during a long select is adopted
   immediately rather than at the next 0.2s tick. *)
let accept_loop server =
  let parked : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  let adopt_idle () =
    Mutex.lock server.qlock;
    let newly = !(server.idle) in
    server.idle := [];
    Mutex.unlock server.qlock;
    List.iter (fun conn -> Hashtbl.replace parked conn.fd conn) newly
  in
  let drain_wake () =
    let buf = Bytes.create 64 in
    let rec go () =
      match Unix.read server.wake_r buf 0 (Bytes.length buf) with
      | n when n = Bytes.length buf -> go ()
      | _ -> ()
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
    in
    go ()
  in
  while not (Atomic.get server.stop) do
    adopt_idle ();
    let watch =
      server.sock :: server.wake_r
      :: Hashtbl.fold (fun fd _ acc -> fd :: acc) parked []
    in
    match Unix.select watch [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      List.iter
        (fun fd ->
          if fd = server.sock then accept_one server
          else if fd = server.wake_r then drain_wake ()
          else
            match Hashtbl.find_opt parked fd with
            | None -> ()
            | Some conn ->
              Hashtbl.remove parked fd;
              enqueue_ready server conn)
        ready
  done;
  (* stopping: close every quiet connection still on the watch set *)
  adopt_idle ();
  Hashtbl.iter (fun _ conn -> close_conn server conn) parked

let io_error fmt =
  Fmt.kstr (fun m -> Error.make Error.Io Error.Io_failure m) fmt

(* ------------------------------------------------------------------ *)
(* the follower's streaming loop                                       *)
(* ------------------------------------------------------------------ *)

(* Interruptible sleep: the follow domain polls the stop flag so a
   shutdown never waits out a full backoff. *)
let sleep_poll server seconds =
  let slice = 0.05 in
  let rec go left =
    if left > 0.0 && not (Atomic.get server.stop) then (
      Unix.sleepf (Stdlib.min slice left);
      go (left -. slice))
  in
  go seconds

let connect_leader (addr : Unix.sockaddr) =
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  match Unix.connect sock addr with
  | () -> Some sock
  | exception Unix.Unix_error (_, _, _) ->
    Unix.close sock;
    None

(* Stream committed entries from the leader and apply them. One fetch
   round-trip per poll tick when caught up (heartbeats), back-to-back
   when behind. Any connection failure degrades the replica to
   read-only service and reconnects with capped backoff; a shutdown
   request stops the loop at the next tick. *)
let follow_loop server (replica : Replica.t) (leader : Unix.sockaddr)
    (description : string) =
  let schema = Session.Store.schema server.store in
  let warned = ref false in
  let backoff = ref 0.05 in
  while not (Atomic.get server.stop) do
    match connect_leader leader with
    | None ->
      if not !warned then (
        Fmt.epr "fds: leader %s unreachable; serving reads only@." description;
        warned := true);
      Replica.set_degraded replica true;
      sleep_poll server !backoff;
      backoff := Stdlib.min 0.5 (!backoff *. 2.)
    | Some fd ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      (try
         let streaming = ref true in
         while !streaming && not (Atomic.get server.stop) do
           Protocol.write_frame oc
             (Protocol.fetch_request ~id:(Json.Num 0.)
                ~from:(Replica.applied replica) ~epoch:(Replica.epoch replica));
           match Protocol.read_frame ic with
           | None -> streaming := false
           | Some payload ->
             (match Protocol.fetched_of_response ~schema payload with
              | Result.Error e ->
                (* e.g. this leader is stale (our epoch is newer): keep
                   serving reads, retry — a newer leader may come up on
                   the same address *)
                Fmt.epr "fds: fetch rejected: %s@." e.Error.message;
                sleep_poll server 0.2
              | Ok f ->
                if !warned then (
                  Fmt.epr "fds: leader %s reachable again@." description;
                  warned := false);
                Replica.set_degraded replica false;
                backoff := 0.05;
                Replica.note_leader replica f.Protocol.f_last;
                (match f.Protocol.f_snapshot with
                 | Some snap ->
                   (match Replica.install_snapshot replica snap with
                    | Ok () -> ()
                    | Result.Error e ->
                      Fmt.epr "fds: snapshot install failed: %s@."
                        e.Error.message;
                      sleep_poll server 0.2)
                 | None ->
                   if f.Protocol.f_entries = [] then
                     (* heartbeat: caught up *)
                     sleep_poll server 0.05
                   else (
                     match Replica.apply replica f.Protocol.f_entries with
                     | Ok () -> ()
                     | Result.Error e ->
                       Fmt.epr "fds: apply failed: %s@." e.Error.message;
                       sleep_poll server 0.2)))
         done
       with
       | End_of_file | Sys_error _ | Error.Error _ -> ());
      close_out_noerr oc
  done

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve ?(workers = 0) ?spec ?(config = Config.default)
    ?(ready = fun () -> ()) ?follow ?snapshot_every ?auth ?(max_queue = 1024)
    ?monitors (listen : listen) schema : (stats, Error.t) result =
  let ( let* ) = Result.bind in
  (* 0 (the default) sizes the worker pool to the machine: one domain
     per core, at least two so one long-running request cannot block
     every other ready connection. Workers never block on sockets (the
     dispatcher holds the quiet connections), and they share one store
     — and one process-wide planner cache, safe because plan keys mix
     the schema fingerprint — so every domain serves requests against
     warm plans. *)
  let workers =
    if workers <= 0 then Stdlib.max 2 (Pool.recommended_jobs ()) else workers
  in
  Metrics.set c_workers workers;
  (* Followers apply leader entries as checked transactions journaled
     locally, so their mode is forced transactional; leaders journal
     with fsync so a committed entry survives power loss. *)
  let* config =
    match (follow, config.Config.journal) with
    | Some _, None ->
      Result.Error
        (io_error "follower mode needs --journal (the replica's own journal)")
    | Some _, Some _ -> Ok { config with Config.transactional = true }
    | None, Some _ -> Ok { config with Config.fsync = true }
    | None, None -> Ok config
  in
  let* store = Session.Store.create ~config ?spec schema in
  (* Boot-time recovery and role assignment, before the socket opens:
     a leader replays its journal's committed state and stamps a fresh
     epoch; a follower recovers from its snapshot + journal tail. *)
  let* role, replica =
    match (follow, config.Config.journal) with
    | Some _, None -> assert false (* rejected above *)
    | Some _, Some journal ->
      let* replica =
        Replica.recover ?snapshot_every ~store ~journal ()
      in
      Ok (Protocol.Follower replica, Some replica)
    | None, Some journal ->
      let* () =
        if Sys.file_exists journal then
          let boot = Session.on_store store in
          let* replayed = Session.replay boot journal in
          (match replayed.Session.rep_torn with
           | Some what ->
             Fmt.epr "fds: warning: journal %s: %s@." journal what
           | None -> ());
          Ok ()
        else Ok ()
      in
      let* log = Replication.lead ~journal in
      Ok (Protocol.Leader log, None)
    | None, None -> Ok (Protocol.Standalone, None)
  in
  (* Monitors attach after recovery, so the replayed history does not
     re-fire events; from here every commit — a leader's client write
     or a follower's applied entry — advances them. A follower cannot
     reject entries the leader already committed, so enforcement
     downgrades to observation there. *)
  (match monitors with
   | None -> ()
   | Some (m, mode) ->
     let mode =
       match (mode, role) with
       | `Enforce, Protocol.Follower _ ->
         Fmt.epr
           "fds: warning: followers cannot enforce monitors (entries are \
            already committed on the leader); observing@.";
         `Observe
       | mode, _ -> mode
     in
     Session.Store.attach_monitors ~mode store m);
  let addr = address listen in
  (* a SIGKILLed predecessor leaves its Unix socket file behind; if
     nothing answers on it any more, reclaim the address *)
  (match listen with
   | `Unix path when Sys.file_exists path ->
     (match connect_leader addr with
      | Some fd -> Unix.close fd (* a live server owns it: bind will say so *)
      | None -> (try Unix.unlink path with Unix.Unix_error _ -> ()))
   | _ -> ());
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  match Unix.bind sock addr with
  | exception Unix.Unix_error (err, _, _) ->
    Unix.close sock;
    Result.Error
      (io_error "cannot bind %s: %s" (describe listen) (Unix.error_message err))
  | () ->
    Unix.listen sock 128;
    let namespaces = Hashtbl.create 7 in
    (* the boot store is the "default" namespace: attach default is a
       no-op rebind, not a second store *)
    Hashtbl.add namespaces "default" store;
    let wake_r, wake_w = Unix.pipe () in
    Unix.set_nonblock wake_r;
    let server =
      {
        store;
        schema;
        spec;
        config;
        auth;
        max_queue = Stdlib.max 1 max_queue;
        role;
        sock;
        stop = Atomic.make false;
        queue = Queue.create ();
        qlock = Mutex.create ();
        qcond = Condition.create ();
        idle = ref [];
        wake_r;
        wake_w;
        namespaces;
        ns_lock = Mutex.create ();
        subscribers = Hashtbl.create 16;
        sub_lock = Mutex.create ();
        connections = Atomic.make 0;
        requests = Atomic.make 0;
      }
    in
    (* monitor events fan out to subscribed connections from the
       committing worker's publish phase *)
    (match Session.Store.monitors store with
     | Some _ ->
       (match
          Session.Store.on_monitor_events store (broadcast_events server)
        with
        | Ok () -> ()
        | Result.Error _ -> ())
     | None -> ());
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let on_signal = Sys.Signal_handle (fun _ -> request_stop server) in
    Sys.set_signal Sys.sigint on_signal;
    Sys.set_signal Sys.sigterm on_signal;
    (* workers record trace spans into their own domain-local
       collector; collect them with [Trace.isolated] and graft them
       into the main domain's trace after the join, the same dance
       {!Fdbs_kernel.Pool} does for its chunks *)
    let domains =
      List.init (max 1 workers) (fun _ ->
          Stdlib.Domain.spawn (fun () ->
              snd (Trace.isolated (worker server))))
    in
    let follower_domain =
      match (replica, follow) with
      | Some r, Some leader_listen ->
        let leader_addr = address leader_listen in
        let description = describe leader_listen in
        Some
          (Stdlib.Domain.spawn (fun () ->
               snd
                 (Trace.isolated (fun () ->
                      follow_loop server r leader_addr description))))
      | _ -> None
    in
    ready ();
    accept_loop server;
    request_stop server;
    List.iter (fun d -> Trace.graft (Stdlib.Domain.join d)) domains;
    (match follower_domain with
     | Some d -> Trace.graft (Stdlib.Domain.join d)
     | None -> ());
    (* workers are gone: close any connection parked after the
       dispatcher's final sweep, then the self-pipe *)
    List.iter (close_conn server) !(server.idle);
    server.idle := [];
    Unix.close wake_r;
    Unix.close wake_w;
    Unix.close sock;
    (match listen with
     | `Unix path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
     | `Tcp _ -> ());
    Ok
      {
        served_connections = Atomic.get server.connections;
        served_requests = Atomic.get server.requests;
      }
