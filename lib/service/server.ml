(* The fds serve daemon: a socket server speaking Protocol frames, one
   session per connection over a single shared store. The main domain
   accepts connections and queues them; a small set of worker domains
   pops the queue and drives one connection each to completion. All
   database mutation is serialized by the store lock inside Session, so
   concurrent connections observe serializable transactions.

   Replication: with a journal the server boots as a *leader* — it
   recovers the journal's committed state, stamps a fresh epoch, and
   serves the `fetch` op from an incremental log view; journal appends
   run with fsync for power-loss durability. With [?follow] it boots as
   a *follower*: it recovers from its own snapshot + journal tail, then
   a dedicated domain streams committed entries from the leader and
   applies them through the Session machinery, while client
   connections get read-only service (writes are rejected with a
   structured Read_only error). Leader death degrades the follower to
   read-only-and-reconnecting instead of an outage.

   Shutdown is cooperative: a "shutdown" request, SIGINT or SIGTERM
   sets the stop flag; the accept loop (a 0.2s select poll) notices,
   the queue is drained, workers (and the follow domain) join, and the
   socket is closed and unlinked. Trace emission is the caller's
   concern (the CLI installs its usual at_exit observer). *)

open Fdbs_kernel
open Fdbs_rpr

type listen = [ `Unix of string | `Tcp of string * int ]

let address : listen -> Unix.sockaddr = function
  | `Unix path -> Unix.ADDR_UNIX path
  | `Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let describe : listen -> string = function
  | `Unix path -> path
  | `Tcp (host, port) -> Fmt.str "%s:%d" host port

type t = {
  store : Session.Store.t;
  role : Protocol.role;
  sock : Unix.file_descr;
  stop : bool Atomic.t;
  queue : Unix.file_descr Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  connections : int Atomic.t;
  requests : int Atomic.t;
}

type stats = {
  served_connections : int;
  served_requests : int;
}

let h_request_us = Metrics.histogram "service.request_us"
let c_workers = Metrics.counter "service.workers"

let request_stop server =
  Atomic.set server.stop true;
  Mutex.lock server.qlock;
  Condition.broadcast server.qcond;
  Mutex.unlock server.qlock

let serve_connection server fd =
  let session = Session.on_store server.store in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match Protocol.read_frame ic with
    | None -> ()
    | Some payload ->
      Atomic.incr server.requests;
      (match Protocol.request_of_string payload with
       | Result.Error e ->
         Protocol.write_frame oc (Protocol.error_response ~id:Json.Null e);
         loop ()
       | Ok req ->
         (match
            (* Per-request budgets are rebuilt inside the handler from
               the store config, so accounting stays exact whichever
               worker domain serves the request; reads evaluate against
               a shared snapshot outside the store lock. *)
            let t0 = Mclock.now_us () in
            Fun.protect
              ~finally:(fun () ->
                Metrics.observe_us h_request_us (Mclock.now_us () -. t0))
              (fun () ->
                Trace.with_span ~cat:"service"
                  ~args:[ ("op", req.Protocol.op) ]
                  "service.request"
                  (fun () -> Protocol.handle ~role:server.role session req))
          with
          | Protocol.Reply r ->
            Protocol.write_frame oc r;
            loop ()
          | Protocol.Final r ->
            Protocol.write_frame oc r;
            request_stop server))
  in
  (try loop () with
   | Error.Error e ->
     (* malformed frame: report once, then drop the connection *)
     (try Protocol.write_frame oc (Protocol.error_response ~id:Json.Null e)
      with Sys_error _ -> ())
   | End_of_file | Sys_error _ -> ()
   | Fault.Injected _ ->
     (* an armed replication fault (e.g. replication.fetch) cuts the
        stream mid-exchange: drop the connection without a reply, the
        follower reconnects *)
     ());
  Session.close session;
  close_out_noerr oc

let worker server () =
  let rec loop () =
    Mutex.lock server.qlock;
    while Queue.is_empty server.queue && not (Atomic.get server.stop) do
      Condition.wait server.qcond server.qlock
    done;
    let job = Queue.take_opt server.queue in
    Mutex.unlock server.qlock;
    match job with
    | None -> ()
    | Some fd ->
      serve_connection server fd;
      loop ()
  in
  loop ()

let accept_loop server =
  while not (Atomic.get server.stop) do
    match Unix.select [ server.sock ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ ->
      (match Unix.accept server.sock with
       | exception Unix.Unix_error (_, _, _) -> ()
       | fd, _ ->
         Atomic.incr server.connections;
         Mutex.lock server.qlock;
         Queue.push fd server.queue;
         Condition.signal server.qcond;
         Mutex.unlock server.qlock)
  done

let io_error fmt =
  Fmt.kstr (fun m -> Error.make Error.Io Error.Io_failure m) fmt

(* ------------------------------------------------------------------ *)
(* the follower's streaming loop                                       *)
(* ------------------------------------------------------------------ *)

(* Interruptible sleep: the follow domain polls the stop flag so a
   shutdown never waits out a full backoff. *)
let sleep_poll server seconds =
  let slice = 0.05 in
  let rec go left =
    if left > 0.0 && not (Atomic.get server.stop) then (
      Unix.sleepf (Stdlib.min slice left);
      go (left -. slice))
  in
  go seconds

let connect_leader (addr : Unix.sockaddr) =
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  match Unix.connect sock addr with
  | () -> Some sock
  | exception Unix.Unix_error (_, _, _) ->
    Unix.close sock;
    None

(* Stream committed entries from the leader and apply them. One fetch
   round-trip per poll tick when caught up (heartbeats), back-to-back
   when behind. Any connection failure degrades the replica to
   read-only service and reconnects with capped backoff; a shutdown
   request stops the loop at the next tick. *)
let follow_loop server (replica : Replica.t) (leader : Unix.sockaddr)
    (description : string) =
  let schema = Session.Store.schema server.store in
  let warned = ref false in
  let backoff = ref 0.05 in
  while not (Atomic.get server.stop) do
    match connect_leader leader with
    | None ->
      if not !warned then (
        Fmt.epr "fds: leader %s unreachable; serving reads only@." description;
        warned := true);
      Replica.set_degraded replica true;
      sleep_poll server !backoff;
      backoff := Stdlib.min 0.5 (!backoff *. 2.)
    | Some fd ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      (try
         let streaming = ref true in
         while !streaming && not (Atomic.get server.stop) do
           Protocol.write_frame oc
             (Protocol.fetch_request ~id:(Json.Num 0.)
                ~from:(Replica.applied replica) ~epoch:(Replica.epoch replica));
           match Protocol.read_frame ic with
           | None -> streaming := false
           | Some payload ->
             (match Protocol.fetched_of_response ~schema payload with
              | Result.Error e ->
                (* e.g. this leader is stale (our epoch is newer): keep
                   serving reads, retry — a newer leader may come up on
                   the same address *)
                Fmt.epr "fds: fetch rejected: %s@." e.Error.message;
                sleep_poll server 0.2
              | Ok f ->
                if !warned then (
                  Fmt.epr "fds: leader %s reachable again@." description;
                  warned := false);
                Replica.set_degraded replica false;
                backoff := 0.05;
                Replica.note_leader replica f.Protocol.f_last;
                (match f.Protocol.f_snapshot with
                 | Some snap ->
                   (match Replica.install_snapshot replica snap with
                    | Ok () -> ()
                    | Result.Error e ->
                      Fmt.epr "fds: snapshot install failed: %s@."
                        e.Error.message;
                      sleep_poll server 0.2)
                 | None ->
                   if f.Protocol.f_entries = [] then
                     (* heartbeat: caught up *)
                     sleep_poll server 0.05
                   else (
                     match Replica.apply replica f.Protocol.f_entries with
                     | Ok () -> ()
                     | Result.Error e ->
                       Fmt.epr "fds: apply failed: %s@." e.Error.message;
                       sleep_poll server 0.2)))
         done
       with
       | End_of_file | Sys_error _ | Error.Error _ -> ());
      close_out_noerr oc
  done

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve ?(workers = 0) ?spec ?(config = Config.default)
    ?(ready = fun () -> ()) ?follow ?snapshot_every (listen : listen) schema :
  (stats, Error.t) result =
  let ( let* ) = Result.bind in
  (* 0 (the default) sizes the worker pool to the machine: one domain
     per core, at least two so a slow connection never starves the
     accept queue. The workers share one store — and one process-wide
     planner cache, safe because plan keys mix the schema fingerprint —
     so every domain serves requests against warm plans. *)
  let workers =
    if workers <= 0 then Stdlib.max 2 (Pool.recommended_jobs ()) else workers
  in
  Metrics.set c_workers workers;
  (* Followers apply leader entries as checked transactions journaled
     locally, so their mode is forced transactional; leaders journal
     with fsync so a committed entry survives power loss. *)
  let* config =
    match (follow, config.Config.journal) with
    | Some _, None ->
      Result.Error
        (io_error "follower mode needs --journal (the replica's own journal)")
    | Some _, Some _ -> Ok { config with Config.transactional = true }
    | None, Some _ -> Ok { config with Config.fsync = true }
    | None, None -> Ok config
  in
  let* store = Session.Store.create ~config ?spec schema in
  (* Boot-time recovery and role assignment, before the socket opens:
     a leader replays its journal's committed state and stamps a fresh
     epoch; a follower recovers from its snapshot + journal tail. *)
  let* role, replica =
    match (follow, config.Config.journal) with
    | Some _, None -> assert false (* rejected above *)
    | Some _, Some journal ->
      let* replica =
        Replica.recover ?snapshot_every ~store ~journal ()
      in
      Ok (Protocol.Follower replica, Some replica)
    | None, Some journal ->
      let* () =
        if Sys.file_exists journal then
          let boot = Session.on_store store in
          let* replayed = Session.replay boot journal in
          (match replayed.Session.rep_torn with
           | Some what ->
             Fmt.epr "fds: warning: journal %s: %s@." journal what
           | None -> ());
          Ok ()
        else Ok ()
      in
      let* log = Replication.lead ~journal in
      Ok (Protocol.Leader log, None)
    | None, None -> Ok (Protocol.Standalone, None)
  in
  let addr = address listen in
  (* a SIGKILLed predecessor leaves its Unix socket file behind; if
     nothing answers on it any more, reclaim the address *)
  (match listen with
   | `Unix path when Sys.file_exists path ->
     (match connect_leader addr with
      | Some fd -> Unix.close fd (* a live server owns it: bind will say so *)
      | None -> (try Unix.unlink path with Unix.Unix_error _ -> ()))
   | _ -> ());
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  match Unix.bind sock addr with
  | exception Unix.Unix_error (err, _, _) ->
    Unix.close sock;
    Result.Error
      (io_error "cannot bind %s: %s" (describe listen) (Unix.error_message err))
  | () ->
    Unix.listen sock 16;
    let server =
      {
        store;
        role;
        sock;
        stop = Atomic.make false;
        queue = Queue.create ();
        qlock = Mutex.create ();
        qcond = Condition.create ();
        connections = Atomic.make 0;
        requests = Atomic.make 0;
      }
    in
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let on_signal = Sys.Signal_handle (fun _ -> request_stop server) in
    Sys.set_signal Sys.sigint on_signal;
    Sys.set_signal Sys.sigterm on_signal;
    (* workers record trace spans into their own domain-local
       collector; collect them with [Trace.isolated] and graft them
       into the main domain's trace after the join, the same dance
       {!Fdbs_kernel.Pool} does for its chunks *)
    let domains =
      List.init (max 1 workers) (fun _ ->
          Stdlib.Domain.spawn (fun () ->
              snd (Trace.isolated (worker server))))
    in
    let follower_domain =
      match (replica, follow) with
      | Some r, Some leader_listen ->
        let leader_addr = address leader_listen in
        let description = describe leader_listen in
        Some
          (Stdlib.Domain.spawn (fun () ->
               snd
                 (Trace.isolated (fun () ->
                      follow_loop server r leader_addr description))))
      | _ -> None
    in
    ready ();
    accept_loop server;
    request_stop server;
    List.iter (fun d -> Trace.graft (Stdlib.Domain.join d)) domains;
    (match follower_domain with
     | Some d -> Trace.graft (Stdlib.Domain.join d)
     | None -> ());
    Unix.close sock;
    (match listen with
     | `Unix path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
     | `Tcp _ -> ());
    Ok
      {
        served_connections = Atomic.get server.connections;
        served_requests = Atomic.get server.requests;
      }
