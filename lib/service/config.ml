(** Re-export of {!Fdbs_kernel.Config}: the service layer's unified
    execution configuration. [Fdbs_service.Config.t] {e is}
    [Fdbs_kernel.Config.t], so checker call sites and session call
    sites share one record type. *)

include Fdbs_kernel.Config
