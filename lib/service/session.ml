(** Long-lived sessions over a shared database store.

    A {!Store.t} loads and validates a schema {e once} and keeps the
    expensive state warm across requests: the planner's compiled plans
    (warmed eagerly at creation), the accumulated active domain, the
    journal path, and the single mutable database state. A {!t}
    (session) is a lightweight view on a store — the CLI opens one per
    invocation, the [fds serve] daemon one per connection — and every
    entry point returns [(value, Fdbs_kernel.Error.t) result]: no
    exception crosses the session boundary.

    Transactions are session-local buffers: [begin_txn] snapshots the
    store state into a private view, calls execute eagerly against the
    view (early feedback) while being buffered, and [commit] re-executes
    the buffer atomically against the {e current} store state under the
    store lock via {!Fdbs_rpr.Txn.run}. Commits are therefore
    serialized, which makes concurrent sessions serializable: the final
    state always equals the committed batches applied in some serial
    order. *)

open Fdbs_kernel
open Fdbs_rpr

let exec_error code fmt =
  Fmt.kstr (fun m -> Error.make Error.Exec code m) fmt

(* Every exception the execution layers throw, folded into the
   structured error the session boundary returns. The messages mirror
   the CLI's historical top-level handler so [fds] output is unchanged. *)
let error_of_exn : exn -> Error.t option = function
  | Error.Error e -> Some e
  | Budget.Exhausted r ->
    Some (exec_error (Error.Budget_exhausted r) "budget exhausted (%s)"
            (Budget.resource_name r))
  | Fault.Injected site ->
    Some (exec_error (Error.Fault_injected site) "fault injected at %s" site)
  | Semantics.Exec_error m ->
    Some (exec_error Error.Exec_failure "execution error: %s" m)
  | Invalid_argument m | Failure m -> Some (exec_error Error.Exec_failure "%s" m)
  | Sys_error m ->
    Some (Error.make Error.Io Error.Io_failure m)
  | _ -> None

(* [guard f] runs [f] and converts any known exception into [Error]. *)
let guard (f : unit -> ('a, Error.t) result) : ('a, Error.t) result =
  try f () with e -> (match error_of_exn e with
    | Some err -> Result.Error err
    | None -> raise e)

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

module Store = struct
  (* Streaming monitors attached to the store: every commit advances
     them through the {!Txn} commit hook. [`Observe] reports
     violations (events to the sinks, metrics, trace); [`Enforce]
     additionally rolls the violating commit back. *)
  type monitors = {
    mon : Monitor.t;
    mode : [ `Observe | `Enforce ];
    mutable sinks : (Monitor.event list -> unit) list;
        (* called after a violating commit published, outside no lock
           but the store's — the server fans events out to subscribed
           connections from here *)
  }

  type t = {
    schema : Schema.t;
    spec : Fdbs_algebra.Spec.t option;
    config : Config.t;
    lock : Mutex.t;
    step_bucket : Budget.Bucket.t option;
        (* admission control: budget-steps-per-second token bucket,
           from [Config.step_rate]; post-charged with each request's
           actual spend, so a heavy request puts the bucket in debt and
           later requests are rejected until it refills *)
    mutable db : Db.t;
    mutable domain : Domain.t;
    mutable monitors : monitors option;
    mutable sessions : int;  (* sessions ever opened *)
    mutable commits : int;   (* committed batches/transactions *)
  }

  (* Compile every constraint wff and every relational assignment of
     the schema once, so the first request served pays no planning.
     [plan_*] cache negative results too, so unsafe bodies are fine. *)
  let warm_planner (schema : Schema.t) =
    List.iter
      (fun (_, wff) -> ignore (Planner.plan_wff schema wff))
      schema.Schema.constraints;
    let rec warm_stmt = function
      | Stmt.Rel_assign (_, rt) -> ignore (Planner.plan_rterm schema rt)
      | Stmt.Seq (a, b) | Stmt.Union (a, b) | Stmt.If (_, a, b) ->
        warm_stmt a; warm_stmt b
      | Stmt.Star s | Stmt.While (_, s) -> warm_stmt s
      | Stmt.Skip | Stmt.Scalar_assign _ | Stmt.Test _ | Stmt.Insert _
      | Stmt.Delete _ -> ()
    in
    List.iter (fun (p : Schema.proc) -> warm_stmt p.Schema.body) schema.Schema.procs

  let create ?(config = Config.default) ?spec (schema : Schema.t) :
    (t, Error.t) result =
    match Schema.check schema with
    | (_ :: _) as errs ->
      Result.Error
        (Error.make Error.Parse Error.Exec_failure (String.concat "; " errs))
    | [] ->
      (match config.Config.jobs with
       | Some 0 -> Pool.set_default_jobs (Pool.recommended_jobs ())
       | Some n -> Pool.set_default_jobs n
       | None -> ());
      if config.Config.trace <> None then Trace.set_enabled true;
      warm_planner schema;
      Ok
        {
          schema;
          spec;
          config;
          lock = Mutex.create ();
          step_bucket =
            (match config.Config.step_rate with
             | None -> None
             | Some rate -> Some (Budget.Bucket.make ~rate ()));
          db = Schema.empty_db schema;
          domain = Domain.empty;
          monitors = None;
          sessions = 0;
          commits = 0;
        }

  let schema (st : t) = st.schema

  (* All store-state access runs under the store lock: [fds serve]
     workers share one store across domains. *)
  let locked (st : t) f =
    Mutex.lock st.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock st.lock) f

  (* One lock acquisition publishes the read snapshot: the immutable
     state and the accumulated domain, shared by reference. Worker
     domains evaluate against the snapshot {e outside} the store lock,
     and because relation index publication is one-shot
     ({!Fdbs_rpr.Relation}), the first reader builds each index and
     every peer domain reuses it. *)
  let snapshot (st : t) : Db.t * Domain.t =
    locked st (fun () -> (st.db, st.domain))

  (* Seed the monitors with the current committed state and hook them
     into every subsequent commit. Attaching after recovery/replay is
     deliberate: a replayed history does not re-fire events. *)
  let attach_monitors ?(mode = `Observe) (st : t) (m : Monitor.t) : unit =
    locked st (fun () ->
        Monitor.attach m st.db;
        st.monitors <- Some { mon = m; mode; sinks = [] })

  let monitors (st : t) : Monitor.t option =
    locked st (fun () -> Option.map (fun a -> a.mon) st.monitors)

  let monitor_mode (st : t) : [ `Observe | `Enforce ] option =
    locked st (fun () -> Option.map (fun a -> a.mode) st.monitors)

  (* Register an event sink; sinks run on the committing thread, after
     the violating commit published. *)
  let on_monitor_events (st : t) (sink : Monitor.event list -> unit) :
    (unit, Error.t) result =
    locked st (fun () ->
        match st.monitors with
        | None ->
          Result.Error
            (Error.make Error.Exec Error.Exec_failure
               "store has no monitors attached")
        | Some a ->
          a.sinks <- a.sinks @ [ sink ];
          Ok ())
end

(* The {!Txn} commit hook carrying the store's monitors: prospective
   verdicts before the journal append, publish (and event fan-out)
   only once the commit is durable. Enforcing monitors turn the first
   violation into the rollback error. *)
let monitor_hook (st : Store.t) :
  (before:Db.t -> after:Db.t -> ((unit -> unit), Error.t) result) option =
  match st.Store.monitors with
  | None -> None
  | Some a ->
    Some
      (fun ~before ~after ->
        let events, publish =
          Monitor.check a.Store.mon ~domain:st.Store.domain ~before ~after
        in
        match (a.Store.mode, events) with
        | `Enforce, ev :: _ -> Result.Error (Monitor.error_of_event ev)
        | _ ->
          Ok
            (fun () ->
              publish ();
              if events <> [] then
                List.iter (fun sink -> sink events) a.Store.sinks))

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

(* An open transaction: the buffered calls (reversed) and the eager
   shadow view they have produced so far. *)
type txn = { mutable view : Db.t; mutable calls : Journal.call list }

type t = { id : int; store : Store.t; mutable txn : txn option }

let on_store (store : Store.t) : t =
  Store.locked store (fun () ->
      store.Store.sessions <- store.Store.sessions + 1;
      { id = store.Store.sessions; store; txn = None })

let open_ ?config ?spec ~schema () : (t, Error.t) result =
  Result.map on_store (Store.create ?config ?spec schema)

let open_text ?config ?spec (src : string) : (t, Error.t) result =
  match Rparser.schema src with
  | Result.Error e -> Result.Error e
  | Ok schema -> open_ ?config ?spec ~schema ()

let id (s : t) = s.id
let store (s : t) = s.store
let schema (s : t) = s.store.Store.schema
let config (s : t) = s.store.Store.config
let in_txn (s : t) = s.txn <> None

(* The state this session currently observes: its transaction view when
   one is open, the shared store state otherwise. *)
let db (s : t) : Db.t =
  match s.txn with
  | Some tx -> tx.view
  | None -> Store.locked s.store (fun () -> s.store.Store.db)

(* ------------------------------------------------------------------ *)
(* Domains and environments                                            *)
(* ------------------------------------------------------------------ *)

(* The active domain of a call batch, keyed by the procedures' declared
   parameter sorts — the same fold the CLI has always used, now folded
   into the store's accumulated domain so carriers only ever grow. *)
let domain_add_calls (schema : Schema.t) (domain : Domain.t)
    (calls : Journal.call list) : (Domain.t, Error.t) result =
  let rec go d = function
    | [] -> Ok d
    | (name, args) :: rest ->
      (match Schema.find_proc schema name with
       | None ->
         Result.Error
           (Error.make ~context:[ ("stage", "domain") ] Error.Exec
              (Error.Unknown_procedure name)
              (Fmt.str "unknown procedure %s" name))
       | Some p ->
         (match
            List.fold_left2
              (fun d (_, srt) v -> Domain.add srt (v :: Domain.carrier d srt) d)
              d p.Schema.pparams args
          with
          | d -> go d rest
          | exception Invalid_argument _ ->
            Result.Error
              (Error.make ~context:[ ("stage", "domain") ] Error.Exec
                 Error.Exec_failure
                 (Fmt.str "procedure %s: arity mismatch" name))))
  in
  go domain calls

(* A fresh environment over the store's schema and accumulated domain.
   The budget is rebuilt per request ([Config.budget] time deadlines
   count from now); the planner cache makes repeated environments
   cheap. [budget] overrides the config-derived one when the caller
   needs to observe the spend (step-rate admission). *)
let env_of ?budget (st : Store.t) : Semantics.env =
  let budget =
    match budget with Some _ -> budget | None -> Config.budget st.Store.config
  in
  Semantics.env ~strategy:st.Store.config.Config.strategy
    ?star_limit:st.Store.config.Config.star_limit
    ?budget
    ~domain:st.Store.domain st.Store.schema

(* --- step-rate admission ---

   [admit_steps] rejects while the store's step bucket is in debt
   (structured [Overloaded] with a retry hint); [request_budget] gives
   every admitted request a budget whose spend is observable (the
   config's own budget, or an unlimited counting one when only the
   bucket needs it); [charge_steps] post-pays the actual spend into the
   bucket. *)

let admit_steps (st : Store.t) : (unit, Error.t) result =
  match st.Store.step_bucket with
  | None -> Ok ()
  | Some b ->
    (match Budget.Bucket.take b 0. with
     | Ok () -> Ok ()
     | Result.Error wait ->
       Result.Error
         (Error.overloaded ~retry_after_s:wait
            "store overloaded: step rate exceeded"))

let request_budget (st : Store.t) : Budget.t option =
  match (Config.budget st.Store.config, st.Store.step_bucket) with
  | (Some _ as b), _ -> b
  | None, Some _ -> Some (Budget.unlimited ())
  | None, None -> None

let charge_steps (st : Store.t) (budget : Budget.t option) : unit =
  match (st.Store.step_bucket, budget) with
  | Some bucket, Some b ->
    Budget.Bucket.charge bucket (float_of_int (Budget.spent b))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

type outcome = {
  state : Db.t;  (** the (committed) state after the batch *)
  completed : Journal.call list;  (** calls that executed, in order *)
}

type failure = {
  fail_error : Error.t;
  fail_completed : Journal.call list;
      (** non-transactional mode: the successful prefix (its effects
          are kept) *)
  fail_state : Db.t;  (** the state after the failure *)
}

let c_requests = Metrics.counter "service.requests"
let c_commits = Metrics.counter "service.commits"

let fail_with ?(completed = []) st e =
  Result.Error { fail_error = e; fail_completed = completed; fail_state = st }

(* Execute a batch against the shared store state. Transactional mode
   delegates atomicity, constraint checking and journaling to
   {!Txn.run}; otherwise each call commits individually and a failure
   keeps the successful prefix. *)
let run_locked (st : Store.t) (calls : Journal.call list) :
  (outcome, failure) result =
  Metrics.incr c_requests;
  match admit_steps st with
  | Result.Error e -> fail_with st.Store.db e
  | Ok () ->
  let budget = request_budget st in
  Fun.protect ~finally:(fun () -> charge_steps st budget) @@ fun () ->
  match domain_add_calls st.Store.schema st.Store.domain calls with
  | Result.Error e -> fail_with st.Store.db e
  | Ok domain ->
    st.Store.domain <- domain;
    let env = env_of ?budget st in
    if st.Store.config.Config.transactional then (
      let txn =
        Txn.make ~check_constraints:st.Store.config.Config.check_constraints
          ?journal:st.Store.config.Config.journal
          ~fsync:st.Store.config.Config.fsync
          ?on_commit:(monitor_hook st) env
      in
      match Txn.run txn calls st.Store.db with
      | Ok final ->
        st.Store.db <- final;
        st.Store.commits <- st.Store.commits + 1;
        Metrics.incr c_commits;
        Ok { state = final; completed = calls }
      | Result.Error rb ->
        fail_with rb.Txn.restored rb.Txn.error)
    else
      let before = st.Store.db in
      (* non-transactional mode has no rollback, so monitors can only
         observe: the batch's net transition is reported after the
         fact, never enforced *)
      let observe db =
        match st.Store.monitors with
        | Some a when not (db == before) ->
          let events =
            Monitor.advance a.Store.mon ~domain:st.Store.domain ~before
              ~after:db
          in
          if events <> [] then
            List.iter (fun sink -> sink events) a.Store.sinks
        | _ -> ()
      in
      let rec go completed db = function
        | [] ->
          st.Store.db <- db;
          st.Store.commits <- st.Store.commits + 1;
          Metrics.incr c_commits;
          observe db;
          Ok { state = db; completed = List.rev completed }
        | ((name, args) as call) :: rest ->
          (match Semantics.call_det env name args db with
           | Ok db' -> go (call :: completed) db' rest
           | Result.Error e ->
             st.Store.db <- db;
             fail_with ~completed:(List.rev completed) db
               { e with Error.context = ("call", name) :: e.Error.context }
           | exception e ->
             (match error_of_exn e with
              | Some err ->
                st.Store.db <- db;
                fail_with ~completed:(List.rev completed) db err
              | None -> raise e))
      in
      go [] st.Store.db calls

(* Execute a batch inside an open transaction: eagerly against the
   session's private view, buffering the calls for commit. *)
let run_txn (s : t) (tx : txn) (calls : Journal.call list) :
  (outcome, failure) result =
  let st = s.store in
  Metrics.incr c_requests;
  match admit_steps st with
  | Result.Error e -> fail_with tx.view e
  | Ok () ->
  let budget = request_budget st in
  Fun.protect ~finally:(fun () -> charge_steps st budget) @@ fun () ->
  match
    Store.locked st (fun () ->
        match domain_add_calls st.Store.schema st.Store.domain calls with
        | Ok domain ->
          st.Store.domain <- domain;
          Ok (env_of ?budget st)
        | Result.Error e -> Result.Error e)
  with
  | Result.Error e -> fail_with tx.view e
  | Ok env ->
    let rec go completed db = function
      | [] ->
        tx.view <- db;
        tx.calls <- completed @ tx.calls;
        Ok { state = db; completed = List.rev completed }
      | ((name, args) as call) :: rest ->
        (match Semantics.call_det env name args db with
         | Ok db' -> go (call :: completed) db' rest
         | Result.Error e ->
           (* the view keeps the successful prefix; the transaction
              stays open for the client to commit or roll back *)
           tx.view <- db;
           tx.calls <- completed @ tx.calls;
           fail_with ~completed:(List.rev completed) db
             { e with Error.context = ("call", name) :: e.Error.context }
         | exception e ->
           (match error_of_exn e with
            | Some err ->
              tx.view <- db;
              tx.calls <- completed @ tx.calls;
              fail_with ~completed:(List.rev completed) db err
            | None -> raise e))
    in
    go [] tx.view calls

let run (s : t) (calls : Journal.call list) : (outcome, failure) result =
  match s.txn with
  | Some tx -> run_txn s tx calls
  | None -> Store.locked s.store (fun () -> run_locked s.store calls)

let call (s : t) (name : string) (args : Value.t list) :
  (Db.t, Error.t) result =
  match run s [ (name, args) ] with
  | Ok o -> Ok o.state
  | Result.Error f -> Result.Error f.fail_error

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

let begin_txn (s : t) : (unit, Error.t) result =
  match s.txn with
  | Some _ ->
    Result.Error (exec_error Error.Exec_failure "transaction already open")
  | None ->
    let base = Store.locked s.store (fun () -> s.store.Store.db) in
    s.txn <- Some { view = base; calls = [] };
    Ok ()

let commit (s : t) : (Db.t, Error.t) result =
  match s.txn with
  | None -> Result.Error (exec_error Error.Exec_failure "no open transaction")
  | Some tx ->
    s.txn <- None;
    let st = s.store in
    let calls = List.rev tx.calls in
    (match admit_steps st with
     | Result.Error e -> Result.Error e
     | Ok () ->
    let budget = request_budget st in
    Fun.protect ~finally:(fun () -> charge_steps st budget) @@ fun () ->
    Store.locked st (fun () ->
        guard (fun () ->
            let env = env_of ?budget st in
            let txn =
              Txn.make
                ~check_constraints:st.Store.config.Config.check_constraints
                ?journal:st.Store.config.Config.journal
                ~fsync:st.Store.config.Config.fsync
                ?on_commit:(monitor_hook st) env
            in
            match Txn.run txn calls st.Store.db with
            | Ok final ->
              st.Store.db <- final;
              st.Store.commits <- st.Store.commits + 1;
              Metrics.incr c_commits;
              Ok final
            | Result.Error rb -> Result.Error rb.Txn.error)))

let rollback (s : t) : (Db.t, Error.t) result =
  match s.txn with
  | None -> Result.Error (exec_error Error.Exec_failure "no open transaction")
  | Some _ ->
    s.txn <- None;
    Ok (Store.locked s.store (fun () -> s.store.Store.db))

let close (s : t) : unit = if s.txn <> None then s.txn <- None

(* ------------------------------------------------------------------ *)
(* query / explain                                                     *)
(* ------------------------------------------------------------------ *)

(* Truth of a closed wff in the session's current state. [params]
   declares extra scalar constants, bound to the given values — the
   protocol's way of writing ground queries like OFFERED(c) with
   c = cs101. *)
let query (s : t) ?(params = []) (src : string) : (bool, Error.t) result =
  let st = s.store in
  let decls = List.map (fun (n, srt, _) -> (n, srt)) params in
  let binds = List.map (fun (n, _, v) -> (n, v)) params in
  match Rparser.wff ~params:decls st.Store.schema src with
  | Result.Error e -> Result.Error e
  | Ok wff ->
    (match admit_steps st with
     | Result.Error e -> Result.Error e
     | Ok () ->
       let budget = request_budget st in
       Fun.protect ~finally:(fun () -> charge_steps st budget) @@ fun () ->
       guard (fun () ->
           (* One snapshot read, then evaluation entirely outside the
              store lock: concurrent server workers answer queries in
              parallel against the same shared state. The budget is
              rebuilt per request, so accounting stays exact per caller
              whatever domain serves it. *)
           let state, domain =
             match s.txn with
             | Some tx -> (tx.view, Store.locked st (fun () -> st.Store.domain))
             | None -> Store.snapshot st
           in
           let env =
             Semantics.env ~strategy:st.Store.config.Config.strategy
               ~consts:binds
               ?star_limit:st.Store.config.Config.star_limit
               ?budget
               ~domain st.Store.schema
           in
           Ok (Semantics.query env state wff)))

(* The planner's own account of the schema: every constraint wff and
   every relational assignment, as compiled and as optimized, with the
   live cardinalities of the session's current state. Rendered to a
   string so the CLI prints it verbatim and the server ships it in a
   response field. *)
(* [delta:true] additionally renders, per constraint, the derivative
   plan the differential layer advances on each commit: one
   insert-derivative per relation the plan reads (zero branches
   dropped), or the fallback note when the wff is not compilable and
   every commit re-evaluates naively. *)
let explain ?(delta = false) (s : t) : string =
  let schema = s.store.Store.schema in
  let state = db s in
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  let rel_arity r = List.length (Schema.sorts_of schema r) in
  let rec rels_of acc = function
    | Relalg.Rel r -> if List.mem r acc then acc else r :: acc
    | Relalg.Singleton _ | Relalg.Empty _ -> acc
    | Relalg.Select (_, e) | Relalg.Project (_, e) -> rels_of acc e
    | Relalg.Product (a, b) | Relalg.Union (a, b) -> rels_of (rels_of acc a) b
    | Relalg.Join (es, _) -> List.fold_left rels_of acc es
    | Relalg.Antijoin (a, b, _) -> rels_of (rels_of acc a) b
  in
  (* live cardinalities drive the greedy join order at eval time *)
  let pp_cards ppf e =
    match List.rev (rels_of [] e) with
    | [] -> Fmt.string ppf "none"
    | rels ->
      Fmt.(list ~sep:(any ", ") (fun ppf r ->
               Fmt.pf ppf "|%s| = %d" r
                 (Relation.cardinal (Db.relation_exn state r))))
        ppf rels
  in
  let pp_derivatives optimized =
    match Delta.derivatives optimized with
    | [] -> Fmt.pf ppf "  delta:     plan reads no relation (constant)@."
    | ds ->
      List.iter
        (fun (r, rendered) -> Fmt.pf ppf "  Δ%s:%s %s@." r
             (String.make (max 1 (5 - String.length r)) ' ')
             rendered)
        ds
  in
  let explain_plan = function
    | Result.Error offender ->
      Fmt.pf ppf "  not compilable: %a falls outside the safe fragment@."
        Fdbs_logic.Formula.pp offender;
      Fmt.pf ppf "  (evaluated by naive enumeration of the carriers)@.";
      if delta then
        Fmt.pf ppf "  delta:     not incremental (re-evaluated in full each commit)@."
    | Ok plan ->
      let optimized = Relalg.optimize ~rel_arity plan in
      Fmt.pf ppf "  plan:      %a@." Relalg.pp plan;
      Fmt.pf ppf "  optimized: %a@." Relalg.pp optimized;
      Fmt.pf ppf "  live cardinalities: %a@." pp_cards optimized;
      if delta then pp_derivatives optimized
  in
  Fmt.pf ppf "schema %s: query plans@." schema.Schema.name;
  if delta then
    Fmt.pf ppf
      "delta view: per-relation insert-derivatives of each constraint plan;@.scalar writes (and stale materializations) fall back to full re-evaluation@.";
  List.iter
    (fun (name, wff) ->
      Fmt.pf ppf "@.constraint %s:@." name;
      Fmt.pf ppf "  wff:       %a@." Fdbs_logic.Formula.pp wff;
      explain_plan (Relalg.compile_wff_explain wff))
    schema.Schema.constraints;
  List.iter
    (fun (p : Schema.proc) ->
      let body = Stmt.desugar ~sorts_of:(Schema.sorts_of schema) p.Schema.body in
      let rec go = function
        | Stmt.Rel_assign (r, rt) ->
          Fmt.pf ppf "@.proc %s: %s := %a@." p.Schema.pname r Stmt.pp_rterm rt;
          explain_plan (Relalg.compile_explain rt)
        | Stmt.Seq (a, b) | Stmt.Union (a, b) ->
          go a;
          go b
        | Stmt.Star s -> go s
        | Stmt.If (_, a, b) ->
          go a;
          go b
        | Stmt.While (_, s) -> go s
        | Stmt.Skip | Stmt.Scalar_assign _ | Stmt.Test _ | Stmt.Insert _
        | Stmt.Delete _ -> ()
      in
      go body)
    schema.Schema.procs;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* eval (algebraic specification queries)                              *)
(* ------------------------------------------------------------------ *)

(* Evaluate a ground query term against the session's algebraic
   specification by conditional rewriting; with [trace] the rendered
   text carries the derivation, innermost step first — exactly the
   lines [fds eval] prints. *)
let eval (s : t) ?(trace = false) (src : string) : (string, Error.t) result =
  match s.store.Store.spec with
  | None ->
    Result.Error (exec_error Error.Exec_failure "session has no specification")
  | Some spec ->
    let fail m = Result.Error (exec_error Error.Exec_failure "%s" m) in
    (match Fdbs_algebra.Aparser.term spec.Fdbs_algebra.Spec.signature src with
     | Result.Error e -> fail e
     | Ok t ->
       if trace then
         match Fdbs_algebra.Eval.explain spec t with
         | Ok (v, steps) ->
           Ok
             (Fmt.str "%a%a@."
                Fmt.(list ~sep:nop (fun ppf s ->
                         Fmt.pf ppf "  %a@." Fdbs_algebra.Eval.pp_step s))
                steps Value.pp v)
         | Result.Error e -> fail (Fmt.str "%a" Fdbs_algebra.Eval.pp_error e)
       else
         match Fdbs_algebra.Eval.query spec t with
         | Ok v -> Ok (Fmt.str "%a@." Value.pp v)
         | Result.Error e -> fail (Fmt.str "%a" Fdbs_algebra.Eval.pp_error e))

(* ------------------------------------------------------------------ *)
(* replay                                                              *)
(* ------------------------------------------------------------------ *)

type replayed = {
  rep_entries : int;  (** committed journal entries re-run *)
  rep_calls : int;  (** calls across them *)
  rep_torn : string option;  (** dropped torn-tail description *)
  rep_state : Db.t;  (** the recovered state, installed in the store *)
  rep_snapshot : int option;
      (** the offset of the snapshot that seeded the replay, if one was
          installed *)
  rep_offset : int;  (** absolute offset of the last entry recovered *)
  rep_epoch : int;  (** highest replication epoch seen *)
}

(* Recover the committed state from a write-ahead journal, snapshot
   aware: when a usable snapshot sits next to the journal
   (journal.snap), install it and re-run only the entries behind it —
   bounded recovery; otherwise re-run the full history from the
   schema's empty instance. Either way the result is installed as the
   store state. A journal truncated behind its snapshot requires that
   snapshot to be usable; losing both is unrecoverable and reported as
   a structured error. *)
let replay (s : t) (journal : string) : (replayed, Error.t) result =
  let st = s.store in
  let load_stage e =
    Result.Error { e with Error.context = ("stage", "load") :: e.Error.context }
  in
  Store.locked st (fun () ->
      match Journal.load_log journal with
      | Result.Error e -> load_stage e
      | Ok log ->
        (match
           Replication.load_snapshot ~schema:st.Store.schema
             (Replication.snapshot_path journal)
         with
         | Result.Error e -> load_stage e
         | Ok (snap, snap_warn) ->
           (* ignore snapshots older than the truncation base: they
              cannot cover the missing prefix *)
           let snap =
             match snap with
             | Some sn when sn.Replication.snap_offset >= log.Journal.base ->
               Some sn
             | _ -> None
           in
           if log.Journal.base > 0 && snap = None then
             load_stage
               (Error.makef Error.Replay Error.Io_failure
                  "journal %s: truncated behind offset %d with no usable \
                   snapshot%s"
                  journal log.Journal.base
                  (match snap_warn with
                   | Some w -> Fmt.str " (%s)" w
                   | None -> ""))
           else
             let start, from =
               match snap with
               | Some sn ->
                 (sn.Replication.snap_db, sn.Replication.snap_offset)
               | None -> (Schema.empty_db st.Store.schema, 0)
             in
             let tail =
               List.filter
                 (fun (e : Journal.stamped) -> e.Journal.offset > from)
                 log.Journal.stamped
             in
             let entries =
               List.map (fun (e : Journal.stamped) -> e.Journal.entry) tail
             in
             let all_calls =
               List.concat_map (fun (e : Journal.entry) -> e.Journal.calls)
                 entries
             in
             (match domain_add_calls st.Store.schema st.Store.domain all_calls with
              | Result.Error e -> Result.Error e
              | Ok domain ->
                (* values living only in the snapshot never appear as
                   tail call arguments; fold its active domain in so
                   queries keep their carriers *)
                let domain =
                  match snap with
                  | Some sn ->
                    Domain.union domain
                      (Db.active_domain sn.Replication.snap_db)
                  | None -> domain
                in
                st.Store.domain <- domain;
                guard (fun () ->
                    let env = env_of st in
                    let txn =
                      Txn.make
                        ~check_constraints:
                          st.Store.config.Config.check_constraints env
                    in
                    match Txn.replay_entries ~first:(from + 1) txn entries start with
                    | Ok final ->
                      st.Store.db <- final;
                      let rep_offset =
                        List.fold_left
                          (fun acc (e : Journal.stamped) ->
                            max acc e.Journal.offset)
                          from tail
                      in
                      let rep_epoch =
                        match snap with
                        | Some sn ->
                          max log.Journal.epoch sn.Replication.snap_epoch
                        | None -> log.Journal.epoch
                      in
                      let rep_torn =
                        match (log.Journal.torn, snap_warn) with
                        | None, None -> None
                        | Some t, None -> Some t
                        | None, Some w -> Some w
                        | Some t, Some w -> Some (t ^ "; " ^ w)
                      in
                      Ok
                        {
                          rep_entries = List.length entries;
                          rep_calls = List.length all_calls;
                          rep_torn;
                          rep_state = final;
                          rep_snapshot =
                            Option.map
                              (fun sn -> sn.Replication.snap_offset)
                              snap;
                          rep_offset;
                          rep_epoch;
                        }
                    | Result.Error e -> Result.Error e))))

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

type stats = {
  planner_hits : int;
  planner_misses : int;
  db_size : int;  (** tuples across all relations of the store state *)
  sessions : int;  (** sessions opened on the store *)
  commits : int;  (** committed batches/transactions *)
  metrics : Metrics.snapshot;
}

let stats (s : t) : stats =
  let hits, misses = Planner.stats () in
  Store.locked s.store (fun () ->
      {
        planner_hits = hits;
        planner_misses = misses;
        db_size = Db.size s.store.Store.db;
        sessions = s.store.Store.sessions;
        commits = s.store.Store.commits;
        metrics = Metrics.snapshot ();
      })

(* ------------------------------------------------------------------ *)
(* monitors                                                            *)
(* ------------------------------------------------------------------ *)

type monitor_axiom = {
  ma_name : string;  (** the axiom's name in the temporal theory *)
  ma_kind : Fdbs_temporal.Tformula.kind;
  ma_depth : int;  (** modal nesting depth = the verdict's lag *)
  ma_compiled : bool;  (** safe plan vs. naive evaluation *)
  ma_violations : int;
}

type monitor_status = {
  mon_theory : string;  (** the monitored theory's name *)
  mon_mode : [ `Observe | `Enforce ];
  mon_commits : int;  (** commits the monitors have advanced through *)
  mon_violations : int;  (** events fired, across all axioms *)
  mon_axioms : monitor_axiom list;
  mon_skipped : (string * string) list;  (** axiom, reason *)
}

let monitor (s : t) : (monitor_status, Error.t) result =
  let st = s.store in
  match Store.monitors st with
  | None ->
    Result.Error
      (exec_error Error.Exec_failure "store has no monitors attached")
  | Some m ->
    let mode = Option.value ~default:`Observe (Store.monitor_mode st) in
    Ok
      {
        mon_theory = Monitor.name m;
        mon_mode = mode;
        mon_commits = Monitor.commits m;
        mon_violations = Monitor.violations m;
        mon_axioms =
          List.map
            (fun (c : Monitor.compiled) ->
              {
                ma_name = c.Monitor.m_name;
                ma_kind = c.Monitor.m_kind;
                ma_depth = c.Monitor.m_depth;
                ma_compiled = c.Monitor.m_compiled;
                ma_violations = c.Monitor.m_violations;
              })
            (Monitor.monitors m);
        mon_skipped = Monitor.skipped m;
      }

(* Subscribe the callback to the store's monitor events; it runs on
   the committing thread after each violating commit published. *)
let subscribe (s : t) (sink : Monitor.event list -> unit) :
  (unit, Error.t) result =
  Store.on_monitor_events s.store sink
