(* The fds serve wire protocol: newline-delimited length-prefixed JSON
   frames, one request/response pair per frame exchange. A frame is

     <decimal byte length of payload> '\n' <payload bytes> '\n'

   where the payload is one JSON document. Requests are objects
   {"id": <any>, "op": <string>, ...}; responses echo the id and carry
   either {"ok": true, "result": ...} or {"ok": false, "error": ...}
   with the error rendered by Fdbs_kernel.Error.to_json. Serialization
   uses the kernel's deterministic Json.to_string, so responses are
   stable byte-for-byte across runs. *)

open Fdbs_kernel
open Fdbs_rpr

let max_frame = 16 * 1024 * 1024

let proto_error fmt =
  Fmt.kstr (fun m -> Error.make Error.Parse Error.Exec_failure m) fmt

(* --- values and states as JSON --- *)

let value_to_json : Value.t -> Json.t = function
  | Value.Bool b -> Json.Bool b
  | Value.Int n -> Json.Num (float_of_int n)
  | Value.Sym s -> Json.Str s

let value_of_json : Json.t -> Value.t option = function
  | Json.Bool b -> Some (Value.Bool b)
  | Json.Num f when Float.is_integer f -> Some (Value.Int (int_of_float f))
  | Json.Str s -> Some (Value.Sym s)
  | _ -> None

let db_to_json (db : Db.t) : Json.t =
  let rel (name, r) =
    ( name,
      Json.Arr
        (List.map
           (fun tuple -> Json.Arr (List.map value_to_json tuple))
           (Relation.to_list r)) )
  in
  let scalar (name, v) = (name, value_to_json v) in
  Json.Obj
    [
      ("relations", Json.Obj (List.map rel (Db.relations db)));
      ("scalars", Json.Obj (List.map scalar (Db.scalars db)));
    ]

(* The inverse, against a schema: how a follower decodes a leader
   snapshot shipped inside a fetch response. *)
let db_of_json ~(schema : Schema.t) (v : Json.t) : (Db.t, Error.t) result =
  let ( let* ) = Result.bind in
  let fields = function Some (Json.Obj fs) -> Ok fs | _ -> Ok [] in
  let* rels = fields (Json.field "relations" v) in
  let* scalars = fields (Json.field "scalars" v) in
  let empty = Schema.empty_db schema in
  let* db =
    List.fold_left
      (fun acc (name, tuples) ->
        let* db = acc in
        match Db.relation empty name with
        | None -> Result.Error (proto_error "state names unknown relation %s" name)
        | Some r0 ->
          let sorts = Relation.sorts r0 in
          (match Json.to_list_opt tuples with
           | None ->
             Result.Error (proto_error "relation %s: tuples must be an array" name)
           | Some items ->
             let* tuples =
               Util.result_all
                 (List.map
                    (fun item ->
                      match Json.to_list_opt item with
                      | None ->
                        Result.Error
                          (proto_error "relation %s: tuple must be an array" name)
                      | Some vs ->
                        let vals = List.filter_map value_of_json vs in
                        if List.length vals <> List.length sorts then
                          Result.Error
                            (proto_error "relation %s: arity mismatch" name)
                        else Ok vals)
                    items)
             in
             Ok (Db.with_relation name (Relation.of_list sorts tuples) db)))
      (Ok empty) rels
  in
  List.fold_left
    (fun acc (name, jv) ->
      let* db = acc in
      match value_of_json jv with
      | Some value -> Ok (Db.with_scalar name value db)
      | None -> Result.Error (proto_error "scalar %s: not a scalar value" name))
    (Ok db) scalars

(* --- procedure calls --- *)

(* The same concrete syntax the CLI accepts on the command line:
   name(arg, ...) with integer literals and symbolic constants. *)
let parse_call (s : string) : (Journal.call, Error.t) result =
  match String.index_opt s '(' with
  | None -> Ok (String.trim s, [])
  | Some i ->
    let name = String.trim (String.sub s 0 i) in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match String.index_opt rest ')' with
     | None -> Result.Error (proto_error "missing ')' in call %S" s)
     | Some j ->
       let args = String.sub rest 0 j in
       let args =
         if String.trim args = "" then []
         else
           String.split_on_char ',' args
           |> List.map (fun a ->
                  let a = String.trim a in
                  match int_of_string_opt a with
                  | Some n -> Value.Int n
                  | None -> Value.Sym a)
       in
       Ok (name, args))

let call_of_json (v : Json.t) : (Journal.call, Error.t) result =
  match v with
  | Json.Str s -> parse_call s
  | Json.Obj _ ->
    (match Option.bind (Json.field "proc" v) Json.to_string_opt with
     | None -> Result.Error (proto_error "call object needs a \"proc\" string")
     | Some name ->
       let args =
         match Json.field "args" v with
         | None -> Some []
         | Some a ->
           Option.bind (Json.to_list_opt a) (fun items ->
               let vals = List.filter_map value_of_json items in
               if List.length vals = List.length items then Some vals else None)
       in
       (match args with
        | Some args -> Ok (name, args)
        | None ->
          Result.Error (proto_error "call %s: args must be scalar values" name)))
  | _ -> Result.Error (proto_error "calls must be strings or objects")

(* --- framing --- *)

(* A blank header line is skipped, not end-of-stream: a stray
   keepalive newline from a pipelining client must not kill the
   connection. (It used to return [None], silently ending the session.) *)
let rec read_frame (ic : in_channel) : string option =
  match input_line ic with
  | exception End_of_file -> None
  | header ->
    let header = String.trim header in
    if header = "" then read_frame ic
    else (
      match int_of_string_opt header with
      | None ->
        raise
          (Error.Error (proto_error "bad frame header %S: expected a length" header))
      | Some n when n < 0 || n > max_frame ->
        raise (Error.Error (proto_error "bad frame length %d" n))
      | Some n ->
        let buf = really_input_string ic n in
        (* consume the trailing newline; tolerate its absence at EOF *)
        (try
           match input_char ic with
           | '\n' -> ()
           | _ -> raise (Error.Error (proto_error "frame missing trailing newline"))
         with End_of_file -> ());
        Some buf)

(* Write a frame into the channel's buffer without flushing — the
   pipelined server corks a burst of responses and flushes once. *)
let output_frame (oc : out_channel) (payload : string) : unit =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  output_char oc '\n'

let write_frame (oc : out_channel) (payload : string) : unit =
  output_frame oc payload;
  flush oc

(* --- the server's pipelined reader --- *)

(* A buffered frame reader over a raw file descriptor. Unlike the
   in_channel path it can tell "no more input available right now"
   ([`Pending]) apart from "blocked waiting for the next request", so
   the server can drain every frame the client already sent, answer
   them all, and flush the responses in one write before blocking
   again. *)
module Reader = struct
  type t = {
    fd : Unix.file_descr;
    mutable buf : Bytes.t;
    mutable pos : int;  (** start of the unconsumed window *)
    mutable len : int;  (** end of the valid window *)
    mutable eof : bool;
  }

  let create ?(size = 64 * 1024) fd =
    { fd; buf = Bytes.create size; pos = 0; len = 0; eof = false }

  (* Read more bytes (blocking); false once the stream has ended. A
     reset peer ends the stream the same way a close does. *)
  let fill r =
    if r.eof then false
    else begin
      if r.pos > 0 then begin
        Bytes.blit r.buf r.pos r.buf 0 (r.len - r.pos);
        r.len <- r.len - r.pos;
        r.pos <- 0
      end;
      if r.len = Bytes.length r.buf then begin
        let bigger = Bytes.create (2 * Bytes.length r.buf) in
        Bytes.blit r.buf 0 bigger 0 r.len;
        r.buf <- bigger
      end;
      match Unix.read r.fd r.buf r.len (Bytes.length r.buf - r.len) with
      | 0 ->
        r.eof <- true;
        false
      | n ->
        r.len <- r.len + n;
        true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        r.eof <- true;
        false
    end

  (* One complete frame from the buffered bytes, or [`More]. Blank
     header lines are consumed and skipped, mirroring {!read_frame}.
     Raises {!Error.Error} on a malformed frame. *)
  let try_frame r : [ `Frame of string | `More ] =
    let fail e = raise (Error.Error e) in
    let rec go () =
      let rec find_nl i =
        if i >= r.len then None
        else if Bytes.get r.buf i = '\n' then Some i
        else find_nl (i + 1)
      in
      match find_nl r.pos with
      | None ->
        (* no header newline yet; a "header" longer than any length
           literal is malformed, not pending *)
        if r.len - r.pos > 32 then
          fail (proto_error "bad frame header: no length before newline")
        else `More
      | Some nl ->
        let header = String.trim (Bytes.sub_string r.buf r.pos (nl - r.pos)) in
        if header = "" then begin
          r.pos <- nl + 1;
          go ()
        end
        else (
          match int_of_string_opt header with
          | None ->
            fail (proto_error "bad frame header %S: expected a length" header)
          | Some n when n < 0 || n > max_frame ->
            fail (proto_error "bad frame length %d" n)
          | Some n ->
            let start = nl + 1 in
            if r.len - start > n then begin
              let payload = Bytes.sub_string r.buf start n in
              if Bytes.get r.buf (start + n) <> '\n' then
                fail (proto_error "frame missing trailing newline");
              r.pos <- start + n + 1;
              `Frame payload
            end
            else if r.eof && r.len - start = n then begin
              (* tolerate a missing trailing newline at EOF *)
              let payload = Bytes.sub_string r.buf start n in
              r.pos <- start + n;
              `Frame payload
            end
            else if r.eof then
              fail (proto_error "truncated frame at end of stream")
            else `More)
    in
    go ()

  (** The next frame. With [block:false] the reader consumes only what
      is already buffered or immediately readable and answers
      [`Pending] when the pipeline is drained; with [block:true] it
      waits for the next request. [`Eof] is a clean end of stream.
      Raises {!Error.Error} on a malformed frame. *)
  let next (r : t) ~(block : bool) : [ `Frame of string | `Eof | `Pending ] =
    let rec go () =
      match try_frame r with
      | `Frame p -> `Frame p
      | `More ->
        if r.eof then `Eof
        else if block then begin
          ignore (fill r);
          go ()
        end
        else (
          match Unix.select [ r.fd ] [] [] 0. with
          | [], _, _ -> `Pending
          | _ ->
            ignore (fill r);
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Pending)
    in
    go ()
end

(* --- requests and responses --- *)

type request = {
  id : Json.t;
  op : string;
  body : Json.t;
}

(* Errors carry the request id when the JSON parsed well enough to
   have one, so a pipelining client can match the rejection to the
   request it sent. (Error replies used to always say [id: null].) *)
let request_of_json (v : Json.t) : (request, Json.t * Error.t) result =
  let id = Option.value ~default:Json.Null (Json.field "id" v) in
  match Option.bind (Json.field "op" v) Json.to_string_opt with
  | None -> Result.Error (id, proto_error "request needs an \"op\" string")
  | Some op -> Ok { id; op; body = v }

let request_of_string (s : string) : (request, Json.t * Error.t) result =
  match Json.parse s with
  | exception Json.Parse_error m ->
    Result.Error (Json.Null, proto_error "request is not valid JSON: %s" m)
  | v -> request_of_json v

let response_obj ~id body = Json.Obj (("id", id) :: body)

let ok_obj ~id result =
  response_obj ~id [ ("ok", Json.Bool true); ("result", result) ]

let error_obj ~id (e : Error.t) =
  response_obj ~id [ ("ok", Json.Bool false); ("error", Error.to_json e) ]

let ok_response ~id result = Json.to_string (ok_obj ~id result)
let error_response ~id (e : Error.t) = Json.to_string (error_obj ~id e)

(* --- the per-operation dispatch, shared by the server loop --- *)

let field_string name req = Option.bind (Json.field name req.body) Json.to_string_opt
let field_bool name req = Option.bind (Json.field name req.body) Json.to_bool_opt

let missing op what = Result.Error (proto_error "%s needs a %s" op what)

let calls_of_request req : (Journal.call list, Error.t) result =
  match Json.field "calls" req.body with
  | None -> missing req.op "\"calls\" array"
  | Some v ->
    (match Json.to_list_opt v with
     | None -> missing req.op "\"calls\" array"
     | Some items -> Util.result_all (List.map call_of_json items))

(* Query parameters: an array of [name, sort, value] triples declaring
   extra constants bound in the wff, the wire form of ground queries. *)
let params_of_request req :
  ((string * Sort.t * Value.t) list, Error.t) result =
  match Json.field "params" req.body with
  | None -> Ok []
  | Some v ->
    (match Json.to_list_opt v with
     | None -> Result.Error (proto_error "params must be an array")
     | Some items ->
       Util.result_all
         (List.map
            (function
              | Json.Arr [ Json.Str name; Json.Str sort; value ] ->
                (match value_of_json value with
                 | Some v -> Ok (name, sort, v)
                 | None ->
                   Result.Error
                     (proto_error "param %s: value must be a scalar" name))
              | _ ->
                Result.Error
                  (proto_error
                     "params must be [name, sort, value] triples"))
            items))

(* --- replication: roles and the fetch op --- *)

(** What the serving process is, per store: a standalone server (every
    op allowed, no [fetch]), a leader (serves [fetch] from its journal
    log), or a follower (read-only: writes are rejected with a
    structured [Read_only] error). *)
type role =
  | Standalone
  | Leader of Fdbs_rpr.Replication.log
  | Follower of Replica.t

let num n = Json.Num (float_of_int n)

let snapshot_to_json (s : Fdbs_rpr.Replication.snapshot) : Json.t =
  Json.Obj
    [
      ("epoch", num s.Fdbs_rpr.Replication.snap_epoch);
      ("offset", num s.Fdbs_rpr.Replication.snap_offset);
      ("state", db_to_json s.Fdbs_rpr.Replication.snap_db);
    ]

let snapshot_of_json ~schema (v : Json.t) :
  (Fdbs_rpr.Replication.snapshot, Error.t) result =
  let int name = Option.bind (Json.field name v) Json.to_int_opt in
  match (int "epoch", int "offset", Json.field "state" v) with
  | Some e, Some o, Some state ->
    (match db_of_json ~schema state with
     | Ok db ->
       Ok
         {
           Fdbs_rpr.Replication.snap_epoch = e;
           snap_offset = o;
           snap_db = db;
         }
     | Result.Error e -> Result.Error e)
  | _ -> Result.Error (proto_error "snapshot needs epoch, offset, and state")

(* Entries travel as the CLI call syntax, which round-trips through
   parse_call for every value the CLI can introduce. *)
let stamped_to_json (s : Journal.stamped) : Json.t =
  Json.Obj
    [
      ("offset", num s.Journal.offset);
      ("epoch", num s.Journal.ep);
      ( "calls",
        Json.Arr
          (List.map
             (fun c -> Json.Str (Fmt.str "%a" Journal.pp_call c))
             s.Journal.entry.Journal.calls) );
    ]

let stamped_of_json (v : Json.t) : (Journal.stamped, Error.t) result =
  let int name = Option.bind (Json.field name v) Json.to_int_opt in
  match (int "offset", int "epoch", Json.field "calls" v) with
  | Some offset, Some ep, Some calls ->
    (match Json.to_list_opt calls with
     | None -> Result.Error (proto_error "entry calls must be an array")
     | Some items ->
       (match Util.result_all (List.map call_of_json items) with
        | Ok calls ->
          Ok { Journal.offset; ep; entry = { Journal.calls } }
        | Result.Error e -> Result.Error e))
  | _ -> Result.Error (proto_error "entry needs offset, epoch, and calls")

(** The follower's side of the [fetch] exchange: the request frame and
    the parsed response. *)
let fetch_request ~(id : Json.t) ~(from : int) ~(epoch : int) : string =
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ("op", Json.Str "fetch");
         ("from", num from);
         ("epoch", num epoch);
       ])

type fetched = {
  f_epoch : int;  (** the leader's current epoch *)
  f_base : int;  (** the leader's truncation base *)
  f_last : int;  (** the leader's last committed offset *)
  f_entries : Journal.stamped list;  (** empty = heartbeat *)
  f_snapshot : Fdbs_rpr.Replication.snapshot option;
      (** sent instead of entries when the follower is behind the
          leader's truncation base *)
}

let error_of_json (v : Json.t) : Error.t =
  let str name = Option.bind (Json.field name v) Json.to_string_opt in
  let message = Option.value ~default:"remote error" (str "message") in
  let context =
    match Json.field "context" v with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, jv) ->
          match jv with Json.Str s -> Some (k, s) | _ -> None)
        fields
    | _ -> []
  in
  let code =
    match str "code" with
    | Some "read-only" -> Error.Read_only
    | Some "stale-epoch" -> Error.Stale_epoch
    | Some "io-failure" -> Error.Io_failure
    | Some "overloaded" -> Error.Overloaded
    | Some "unauthorized" -> Error.Unauthorized
    | Some "monitor-violation" ->
      Error.Monitor_violation
        (Option.value ~default:"?" (List.assoc_opt "monitor" context))
    | _ -> Error.Exec_failure
  in
  Error.make ~context Error.Exec code message

let fetched_of_response ~schema (payload : string) : (fetched, Error.t) result =
  match Json.parse payload with
  | exception Json.Parse_error m ->
    Result.Error (proto_error "fetch response is not valid JSON: %s" m)
  | v ->
    (match Option.bind (Json.field "ok" v) Json.to_bool_opt with
     | Some false ->
       Result.Error
         (match Json.field "error" v with
          | Some e -> error_of_json e
          | None -> proto_error "fetch rejected")
     | _ ->
       (match Json.field "result" v with
        | None -> Result.Error (proto_error "fetch response has no result")
        | Some r ->
          let int name = Option.bind (Json.field name r) Json.to_int_opt in
          (match (int "epoch", int "base", int "last") with
           | Some f_epoch, Some f_base, Some f_last ->
             let entries =
               match Option.bind (Json.field "entries" r) Json.to_list_opt with
               | None -> Ok []
               | Some items -> Util.result_all (List.map stamped_of_json items)
             in
             (match entries with
              | Result.Error e -> Result.Error e
              | Ok f_entries ->
                (match Json.field "snapshot" r with
                 | None ->
                   Ok { f_epoch; f_base; f_last; f_entries; f_snapshot = None }
                 | Some sj ->
                   (match snapshot_of_json ~schema sj with
                    | Ok snap ->
                      Ok
                        {
                          f_epoch;
                          f_base;
                          f_last;
                          f_entries;
                          f_snapshot = Some snap;
                        }
                    | Result.Error e -> Result.Error e)))
           | _ ->
             Result.Error
               (proto_error "fetch response needs epoch, base, and last"))))

(* The leader's fetch handler. The replication.fetch fault site fires
   *before* the response is assembled and propagates as an exception:
   the server drops the connection — a stream cut mid-exchange that
   exercises the follower's reconnect path. *)
let handle_fetch (log : Fdbs_rpr.Replication.log) (session : Session.t)
    (req : request) : (Json.t, Error.t) result =
  let open Fdbs_rpr in
  Fault.hit "replication.fetch";
  let int name = Option.bind (Json.field name req.body) Json.to_int_opt in
  match int "from" with
  | None -> Result.Error (proto_error "fetch needs a \"from\" offset")
  | Some from ->
    let req_epoch = Option.value ~default:0 (int "epoch") in
    (match Replication.refresh log with
     | Result.Error e -> Result.Error e
     | Ok () ->
       let epoch = Replication.epoch log in
       if req_epoch > epoch then
         Result.Error
           (Error.makef
              ~context:
                [
                  ("leader", string_of_int epoch);
                  ("follower", string_of_int req_epoch);
                ]
              Error.Exec Error.Stale_epoch
              "stale leader: follower is at epoch %d, this leader at %d"
              req_epoch epoch)
       else
         let base = Replication.base log in
         let last = Replication.last_offset log in
         let header =
           [ ("epoch", num epoch); ("base", num base); ("last", num last) ]
         in
         if from < base then (
           (* the follower predates our truncation: ship the snapshot *)
           match
             Replication.load_snapshot ~schema:(Session.schema session)
               (Replication.snapshot_path (Replication.path log))
           with
           | Result.Error e -> Result.Error e
           | Ok (Some snap, _) ->
             Ok (Json.Obj (header @ [ ("snapshot", snapshot_to_json snap) ]))
           | Ok (None, why) ->
             Result.Error
               (Error.makef Error.Io Error.Io_failure
                  "fetch from %d predates the log base %d and no usable \
                   snapshot is available%s"
                  from base
                  (match why with Some w -> Fmt.str " (%s)" w | None -> "")))
         else
           let entries = Replication.entries_from log from in
           Ok
             (Json.Obj
                (header
                @ [ ("entries", Json.Arr (List.map stamped_to_json entries)) ])))

let replication_to_json (role : role) : (string * Json.t) list =
  let open Fdbs_rpr in
  match role with
  | Standalone -> []
  | Leader log ->
    [
      ( "replication",
        Json.Obj
          [
            ("role", Json.Str "leader");
            ("epoch", num (Replication.epoch log));
            ("base", num (Replication.base log));
            ("last", num (Replication.last_offset log));
          ] );
    ]
  | Follower r ->
    [
      ( "replication",
        Json.Obj
          [
            ("role", Json.Str "follower");
            ("epoch", num (Replica.epoch r));
            ("applied", num (Replica.applied r));
            ("snapshot", num (Replica.snapshot_offset r));
            ("degraded", Json.Bool (Replica.degraded r));
          ] );
    ]

let stats_to_json ?(role = Standalone) (s : Session.stats) : Json.t =
  let counters =
    List.map (fun (k, v) -> (k, num v)) s.Session.metrics.Metrics.counters
  in
  Json.Obj
    ([
       ("planner_hits", num s.Session.planner_hits);
       ("planner_misses", num s.Session.planner_misses);
       ("db_size", num s.Session.db_size);
       ("sessions", num s.Session.sessions);
       ("commits", num s.Session.commits);
       ("metrics", Json.Obj counters);
     ]
    @ replication_to_json role)

(* --- protocol versioning and monitor events --- *)

(* Version 1 is the original request/reply protocol (no [hello], no
   event frames); version 2 adds the [hello] handshake, the [monitor]
   status op, and server-pushed event frames on subscribed
   connections. Clients that never send [hello] are v1 and are served
   exactly as before. *)
let protocol_version = 2

(* The ops this server answers for the given role. [attach] and
   [subscribe] are connection-level: the server intercepts them before
   the per-request dispatch, so a bare {!handle} caller rejects them. *)
let supported_ops ~(role : role) : string list =
  let read =
    [
      "ping"; "hello"; "query"; "eval"; "explain"; "state"; "stats";
      "monitor"; "subscribe"; "batch"; "shutdown";
    ]
  in
  let write = [ "run"; "begin"; "commit"; "rollback"; "replay"; "attach" ] in
  match role with
  | Standalone -> read @ write
  | Leader _ -> read @ write @ [ "fetch" ]
  | Follower _ -> read

let kind_to_string : Fdbs_temporal.Tformula.kind -> string = function
  | Fdbs_temporal.Tformula.Static -> "static"
  | Fdbs_temporal.Tformula.Transition -> "transition"

let monitor_status_to_json (m : Session.monitor_status) : Json.t =
  Json.Obj
    [
      ("theory", Json.Str m.Session.mon_theory);
      ( "mode",
        Json.Str
          (match m.Session.mon_mode with
           | `Observe -> "observe"
           | `Enforce -> "enforce") );
      ("commits", num m.Session.mon_commits);
      ("violations", num m.Session.mon_violations);
      ( "axioms",
        Json.Arr
          (List.map
             (fun (a : Session.monitor_axiom) ->
               Json.Obj
                 [
                   ("name", Json.Str a.Session.ma_name);
                   ("kind", Json.Str (kind_to_string a.Session.ma_kind));
                   ("depth", num a.Session.ma_depth);
                   ("compiled", Json.Bool a.Session.ma_compiled);
                   ("violations", num a.Session.ma_violations);
                 ])
             m.Session.mon_axioms) );
      ( "skipped",
        Json.Obj
          (List.map (fun (n, r) -> (n, Json.Str r)) m.Session.mon_skipped) );
    ]

(* Event frames are pushed by the server on subscribed connections,
   interleaved with replies. They are tagged with an ["event"] member
   (and never carry ["id"]/["ok"]), so a client can tell them apart
   from the reply stream. *)
let violation_frame (ev : Monitor.event) : string =
  Json.to_string
    (Json.Obj
       [
         ("event", Json.Str "violation");
         ("monitor", Json.Str ev.Monitor.ev_axiom);
         ("kind", Json.Str (kind_to_string ev.Monitor.ev_kind));
         ("state", num ev.Monitor.ev_state);
       ])

let heartbeat_frame ~(commits : int) ~(violations : int) : string =
  Json.to_string
    (Json.Obj
       [
         ("event", Json.Str "heartbeat");
         ("commits", num commits);
         ("violations", num violations);
       ])

(** Classify an incoming frame on a subscribed connection: an event
    frame (tagged ["event"]) or an ordinary reply. *)
let classify_frame (v : Json.t) : [ `Event of string | `Reply ] =
  match Option.bind (Json.field "event" v) Json.to_string_opt with
  | Some e -> `Event e
  | None -> `Reply

type reply =
  | Reply of string
  | Final of string  (** reply, then shut the server down *)

(* Writes a follower could accept locally would fork the replica from
   the leader's history; they are rejected with a structured error the
   client can dispatch on. *)
let read_only op =
  Error.make
    ~context:[ ("op", op) ]
    Error.Exec Error.Read_only
    "read-only replica: writes must go to the leader"

(* Admission hook: the server charges its per-connection rate bucket
   through this, once per request — including once per sub-request of
   a batch, which is why it is threaded into the dispatch rather than
   applied only at the framing layer. *)
let no_admit () : (unit, Error.t) result = Ok ()

let rec handle_obj ?(role = Standalone) ?(admit = no_admit) ?(features = [])
    (session : Session.t) (req : request) : Json.t * bool =
  let id = req.id in
  let ok result = (ok_obj ~id result, false) in
  let err e = (error_obj ~id e, false) in
  let of_result to_json = function
    | Ok v -> ok (to_json v)
    | Result.Error e -> err e
  in
  match (req.op, role) with
  | ("run" | "begin" | "commit" | "rollback" | "replay"), Follower _ ->
    err (read_only req.op)
  | "fetch", Leader log -> of_result Fun.id (handle_fetch log session req)
  | "fetch", (Standalone | Follower _) ->
    err (proto_error "fetch is only served by a replication leader")
  | op, _ -> (
    match op with
  | "ping" -> ok (Json.Str "pong")
  | "hello" ->
    (* the v2 handshake: the client declares its version (absent = 1,
       but any client sending [hello] is at least 2) and learns what
       this server answers — the op set for its role and the
       connection's feature flags ("monitors", "subscribe", ...). The
       effective version is the lower of the two. *)
    let client =
      Option.value ~default:protocol_version
        (Option.bind (Json.field "version" req.body) Json.to_int_opt)
    in
    ok
      (Json.Obj
         [
           ("version", num (min client protocol_version));
           ( "ops",
             Json.Arr
               (List.map (fun o -> Json.Str o) (supported_ops ~role)) );
           ("features", Json.Arr (List.map (fun f -> Json.Str f) features));
         ])
  | "monitor" ->
    of_result monitor_status_to_json (Session.monitor session)
  | "subscribe" ->
    (* connection-level: the server swaps the connection into event
       streaming before dispatch ever sees the op *)
    err
      (proto_error
         "subscribe must be a connection's own request (served by fds serve)")
  | "batch" ->
    (* N requests in one frame: each sub-request is admitted and
       dispatched in order, and the reply carries the sub-responses as
       one array — one frame out for one frame in. *)
    (match Option.bind (Json.field "requests" req.body) Json.to_list_opt with
     | None | Some [] ->
       err (proto_error "batch needs a non-empty \"requests\" array")
     | Some items ->
       let sub item =
         match request_of_json item with
         | Result.Error (sub_id, e) -> error_obj ~id:sub_id e
         | Ok sub_req ->
           (match sub_req.op with
            | "batch" | "shutdown" | "fetch" | "attach" ->
              error_obj ~id:sub_req.id
                (proto_error "%S is not allowed inside a batch" sub_req.op)
            | _ ->
              (match admit () with
               | Result.Error e -> error_obj ~id:sub_req.id e
               | Ok () ->
                 fst (handle_obj ~role ~admit ~features session sub_req)))
       in
       ok (Json.Arr (List.map sub items)))
  | "run" ->
    (match calls_of_request req with
     | Result.Error e -> err e
     | Ok calls ->
       (match Session.run session calls with
        | Ok o ->
          ok
            (Json.Obj
               [
                 ( "completed",
                   Json.Num (float_of_int (List.length o.Session.completed)) );
                 ("state", db_to_json o.Session.state);
               ])
        | Result.Error f ->
          err
            {
              f.Session.fail_error with
              Error.context =
                ("completed",
                 string_of_int (List.length f.Session.fail_completed))
                :: f.Session.fail_error.Error.context;
            }))
  | "query" ->
    (match field_string "wff" req with
     | None -> err (proto_error "query needs a \"wff\" string")
     | Some wff ->
       (match params_of_request req with
        | Result.Error e -> err e
        | Ok params ->
          of_result (fun b -> Json.Bool b)
            (Session.query session ~params wff)))
  | "eval" ->
    (match field_string "term" req with
     | None -> err (proto_error "eval needs a \"term\" string")
     | Some term ->
       let trace = Option.value ~default:false (field_bool "trace" req) in
       of_result (fun s -> Json.Str s) (Session.eval session ~trace term))
  | "explain" ->
    let delta = Option.value ~default:false (field_bool "delta" req) in
    ok (Json.Str (Session.explain ~delta session))
  | "begin" -> of_result (fun () -> Json.Null) (Session.begin_txn session)
  | "commit" -> of_result db_to_json (Session.commit session)
  | "rollback" -> of_result db_to_json (Session.rollback session)
  | "state" -> ok (db_to_json (Session.db session))
  | "stats" -> ok (stats_to_json ~role (Session.stats session))
  | "replay" ->
    (match field_string "journal" req with
     | None ->
       err (proto_error "replay needs a \"journal\" string")
     | Some path ->
       of_result
         (fun r ->
           Json.Obj
             [
               ("entries", Json.Num (float_of_int r.Session.rep_entries));
               ("calls", Json.Num (float_of_int r.Session.rep_calls));
               ( "torn",
                 match r.Session.rep_torn with
                 | None -> Json.Null
                 | Some m -> Json.Str m );
               ("state", db_to_json r.Session.rep_state);
             ])
         (Session.replay session path))
  | "shutdown" -> (ok_obj ~id (Json.Str "bye"), true)
  | op -> err (proto_error "unknown operation %S" op))

let handle ?role ?admit ?features (session : Session.t) (req : request) : reply =
  let obj, final = handle_obj ?role ?admit ?features session req in
  let s = Json.to_string obj in
  if final then Final s else Reply s
