(* The fds serve wire protocol: newline-delimited length-prefixed JSON
   frames, one request/response pair per frame exchange. A frame is

     <decimal byte length of payload> '\n' <payload bytes> '\n'

   where the payload is one JSON document. Requests are objects
   {"id": <any>, "op": <string>, ...}; responses echo the id and carry
   either {"ok": true, "result": ...} or {"ok": false, "error": ...}
   with the error rendered by Fdbs_kernel.Error.to_json. Serialization
   uses the kernel's deterministic Json.to_string, so responses are
   stable byte-for-byte across runs. *)

open Fdbs_kernel
open Fdbs_rpr

let max_frame = 16 * 1024 * 1024

let proto_error fmt =
  Fmt.kstr (fun m -> Error.make Error.Parse Error.Exec_failure m) fmt

(* --- values and states as JSON --- *)

let value_to_json : Value.t -> Json.t = function
  | Value.Bool b -> Json.Bool b
  | Value.Int n -> Json.Num (float_of_int n)
  | Value.Sym s -> Json.Str s

let value_of_json : Json.t -> Value.t option = function
  | Json.Bool b -> Some (Value.Bool b)
  | Json.Num f when Float.is_integer f -> Some (Value.Int (int_of_float f))
  | Json.Str s -> Some (Value.Sym s)
  | _ -> None

let db_to_json (db : Db.t) : Json.t =
  let rel (name, r) =
    ( name,
      Json.Arr
        (List.map
           (fun tuple -> Json.Arr (List.map value_to_json tuple))
           (Relation.to_list r)) )
  in
  let scalar (name, v) = (name, value_to_json v) in
  Json.Obj
    [
      ("relations", Json.Obj (List.map rel (Db.relations db)));
      ("scalars", Json.Obj (List.map scalar (Db.scalars db)));
    ]

(* --- procedure calls --- *)

(* The same concrete syntax the CLI accepts on the command line:
   name(arg, ...) with integer literals and symbolic constants. *)
let parse_call (s : string) : (Journal.call, Error.t) result =
  match String.index_opt s '(' with
  | None -> Ok (String.trim s, [])
  | Some i ->
    let name = String.trim (String.sub s 0 i) in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match String.index_opt rest ')' with
     | None -> Result.Error (proto_error "missing ')' in call %S" s)
     | Some j ->
       let args = String.sub rest 0 j in
       let args =
         if String.trim args = "" then []
         else
           String.split_on_char ',' args
           |> List.map (fun a ->
                  let a = String.trim a in
                  match int_of_string_opt a with
                  | Some n -> Value.Int n
                  | None -> Value.Sym a)
       in
       Ok (name, args))

let call_of_json (v : Json.t) : (Journal.call, Error.t) result =
  match v with
  | Json.Str s -> parse_call s
  | Json.Obj _ ->
    (match Option.bind (Json.field "proc" v) Json.to_string_opt with
     | None -> Result.Error (proto_error "call object needs a \"proc\" string")
     | Some name ->
       let args =
         match Json.field "args" v with
         | None -> Some []
         | Some a ->
           Option.bind (Json.to_list_opt a) (fun items ->
               let vals = List.filter_map value_of_json items in
               if List.length vals = List.length items then Some vals else None)
       in
       (match args with
        | Some args -> Ok (name, args)
        | None ->
          Result.Error (proto_error "call %s: args must be scalar values" name)))
  | _ -> Result.Error (proto_error "calls must be strings or objects")

(* --- framing --- *)

let read_frame (ic : in_channel) : string option =
  match input_line ic with
  | exception End_of_file -> None
  | header ->
    let header = String.trim header in
    if header = "" then None
    else (
      match int_of_string_opt header with
      | None ->
        raise
          (Error.Error (proto_error "bad frame header %S: expected a length" header))
      | Some n when n < 0 || n > max_frame ->
        raise (Error.Error (proto_error "bad frame length %d" n))
      | Some n ->
        let buf = really_input_string ic n in
        (* consume the trailing newline; tolerate its absence at EOF *)
        (try
           match input_char ic with
           | '\n' -> ()
           | _ -> raise (Error.Error (proto_error "frame missing trailing newline"))
         with End_of_file -> ());
        Some buf)

let write_frame (oc : out_channel) (payload : string) : unit =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  output_char oc '\n';
  flush oc

(* --- requests and responses --- *)

type request = {
  id : Json.t;
  op : string;
  body : Json.t;
}

let request_of_string (s : string) : (request, Error.t) result =
  match Json.parse s with
  | exception Json.Parse_error m ->
    Result.Error (proto_error "request is not valid JSON: %s" m)
  | v ->
    let id = Option.value ~default:Json.Null (Json.field "id" v) in
    (match Option.bind (Json.field "op" v) Json.to_string_opt with
     | None -> Result.Error (proto_error "request needs an \"op\" string")
     | Some op -> Ok { id; op; body = v })

let response ~id body = Json.to_string (Json.Obj (("id", id) :: body))
let ok_response ~id result = response ~id [ ("ok", Json.Bool true); ("result", result) ]

let error_response ~id (e : Error.t) =
  response ~id [ ("ok", Json.Bool false); ("error", Error.to_json e) ]

(* --- the per-operation dispatch, shared by the server loop --- *)

let field_string name req = Option.bind (Json.field name req.body) Json.to_string_opt
let field_bool name req = Option.bind (Json.field name req.body) Json.to_bool_opt

let missing op what = Result.Error (proto_error "%s needs a %s" op what)

let calls_of_request req : (Journal.call list, Error.t) result =
  match Json.field "calls" req.body with
  | None -> missing req.op "\"calls\" array"
  | Some v ->
    (match Json.to_list_opt v with
     | None -> missing req.op "\"calls\" array"
     | Some items -> Util.result_all (List.map call_of_json items))

(* Query parameters: an array of [name, sort, value] triples declaring
   extra constants bound in the wff, the wire form of ground queries. *)
let params_of_request req :
  ((string * Sort.t * Value.t) list, Error.t) result =
  match Json.field "params" req.body with
  | None -> Ok []
  | Some v ->
    (match Json.to_list_opt v with
     | None -> Result.Error (proto_error "params must be an array")
     | Some items ->
       Util.result_all
         (List.map
            (function
              | Json.Arr [ Json.Str name; Json.Str sort; value ] ->
                (match value_of_json value with
                 | Some v -> Ok (name, sort, v)
                 | None ->
                   Result.Error
                     (proto_error "param %s: value must be a scalar" name))
              | _ ->
                Result.Error
                  (proto_error
                     "params must be [name, sort, value] triples"))
            items))

let stats_to_json (s : Session.stats) : Json.t =
  let num n = Json.Num (float_of_int n) in
  let counters =
    List.map (fun (k, v) -> (k, num v)) s.Session.metrics.Metrics.counters
  in
  Json.Obj
    [
      ("planner_hits", num s.Session.planner_hits);
      ("planner_misses", num s.Session.planner_misses);
      ("db_size", num s.Session.db_size);
      ("sessions", num s.Session.sessions);
      ("commits", num s.Session.commits);
      ("metrics", Json.Obj counters);
    ]

type reply =
  | Reply of string
  | Final of string  (** reply, then shut the server down *)

let handle (session : Session.t) (req : request) : reply =
  let id = req.id in
  let ok result = Reply (ok_response ~id result) in
  let err e = Reply (error_response ~id e) in
  let of_result to_json = function
    | Ok v -> ok (to_json v)
    | Result.Error e -> err e
  in
  match req.op with
  | "ping" -> ok (Json.Str "pong")
  | "run" ->
    (match calls_of_request req with
     | Result.Error e -> err e
     | Ok calls ->
       (match Session.run session calls with
        | Ok o ->
          ok
            (Json.Obj
               [
                 ( "completed",
                   Json.Num (float_of_int (List.length o.Session.completed)) );
                 ("state", db_to_json o.Session.state);
               ])
        | Result.Error f ->
          err
            {
              f.Session.fail_error with
              Error.context =
                ("completed",
                 string_of_int (List.length f.Session.fail_completed))
                :: f.Session.fail_error.Error.context;
            }))
  | "query" ->
    (match field_string "wff" req with
     | None -> err (proto_error "query needs a \"wff\" string")
     | Some wff ->
       (match params_of_request req with
        | Result.Error e -> err e
        | Ok params ->
          of_result (fun b -> Json.Bool b)
            (Session.query session ~params wff)))
  | "eval" ->
    (match field_string "term" req with
     | None -> err (proto_error "eval needs a \"term\" string")
     | Some term ->
       let trace = Option.value ~default:false (field_bool "trace" req) in
       of_result (fun s -> Json.Str s) (Session.eval session ~trace term))
  | "explain" -> ok (Json.Str (Session.explain session))
  | "begin" -> of_result (fun () -> Json.Null) (Session.begin_txn session)
  | "commit" -> of_result db_to_json (Session.commit session)
  | "rollback" -> of_result db_to_json (Session.rollback session)
  | "state" -> ok (db_to_json (Session.db session))
  | "stats" -> ok (stats_to_json (Session.stats session))
  | "replay" ->
    (match field_string "journal" req with
     | None ->
       err (proto_error "replay needs a \"journal\" string")
     | Some path ->
       of_result
         (fun r ->
           Json.Obj
             [
               ("entries", Json.Num (float_of_int r.Session.rep_entries));
               ("calls", Json.Num (float_of_int r.Session.rep_calls));
               ( "torn",
                 match r.Session.rep_torn with
                 | None -> Json.Null
                 | Some m -> Json.Str m );
               ("state", db_to_json r.Session.rep_state);
             ])
         (Session.replay session path))
  | "shutdown" -> Final (ok_response ~id (Json.Str "bye"))
  | op -> err (proto_error "unknown operation %S" op)
