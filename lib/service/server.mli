(** The [fds serve] daemon: a socket server speaking {!Protocol}
    frames, one {!Session} per connection over a single shared
    {!Session.Store}. A dispatcher selects over quiet connections and
    worker domains serve the ready ones — a worker never blocks on a
    socket, so any number of open connections multiplex over a small
    pool; the store lock serializes database mutation, so concurrent
    transactions are serializable. *)

open Fdbs_kernel

type listen = [ `Unix of string | `Tcp of string * int ]

val describe : listen -> string

type stats = {
  served_connections : int;
  served_requests : int;
}

(** Bind, listen, and block serving connections until a [shutdown]
    request, SIGINT or SIGTERM. [workers] worker domains serve
    connections concurrently — 0 (the default) sizes the pool to the
    machine (one per core, minimum 2). The domains share one store and
    one process-wide planner cache (plan keys mix the schema
    fingerprint, so sharing is safe); reads evaluate against immutable
    store snapshots outside the store lock, and per-request budgets are
    rebuilt per request so accounting stays exact whichever domain
    serves. [ready] runs once the socket is listening (the CLI prints
    its "serving on" line there). On return the socket is closed (and
    unlinked for Unix sockets) and all workers have joined. [Error]
    means the store could not be created or the address could not be
    bound.

    Replication: with a journal in [config] (and no [follow]) the
    server is a {e leader} — it recovers the journal's committed state
    at boot, stamps a fresh epoch, journals with fsync, and serves the
    [fetch] op. With [follow] (the leader's address) it is a
    {e follower}: [config] must carry the replica's own journal; the
    server recovers from snapshot + journal tail, streams committed
    entries from the leader in a dedicated domain, snapshots every
    [snapshot_every] entries (default 64), and serves clients
    read-only — writes are rejected with a structured [Read_only]
    error. When the leader dies the follower keeps serving reads and
    reconnects with capped backoff.

    Gateway behavior: connections are pipelined and multiplexed —
    every frame the client has already sent is answered in order into
    one corked flush, the quiet connection returns to the dispatcher's
    select set (no worker ever blocks on a socket, so idle or pooled
    connections cannot starve the pool), and the [batch] op executes N
    requests in a single frame exchange. Admission control:
    [config.rate_limit]/[rate_burst] token-bucket requests per
    connection and [config.step_rate] meters budget steps per store;
    over-limit requests get a structured [Overloaded] error with a
    [retry-after-ms] hint instead of stalling. Connections accepted
    while [max_queue] (default 1024) connections already await a
    worker are shed with one [Overloaded] frame. The [attach] op binds a
    connection to a named namespace — an independent store with its own
    journal ([config.journal ^ "." ^ name], recovered at first attach)
    over the shared planner cache; with [auth] set, [attach] requires
    the matching ["token"]. The [hello] op negotiates the protocol
    version and advertises the connection's features ("namespaces",
    and "monitors"/"subscribe" when monitors are attached).

    Monitors: [monitors] attaches compiled streaming monitors
    ({!Fdbs_rpr.Monitor}) to the boot store {e after} recovery (a
    replayed history does not re-fire events). Every commit advances
    them — on a follower the applied leader entries do, at zero leader
    cost. [`Observe] pushes violation event frames to [subscribe]d
    connections; [`Enforce] additionally rolls violating commits back
    with a structured [Monitor_violation] error (downgraded to
    [`Observe] on followers, which cannot reject committed entries).
    Event pushes are serialized with the reply stream by a
    per-connection write lock, so frames never interleave. *)
val serve :
  ?workers:int ->
  ?spec:Fdbs_algebra.Spec.t ->
  ?config:Config.t ->
  ?ready:(unit -> unit) ->
  ?follow:listen ->
  ?snapshot_every:int ->
  ?auth:string ->
  ?max_queue:int ->
  ?monitors:Fdbs_rpr.Monitor.t * [ `Observe | `Enforce ] ->
  listen ->
  Fdbs_rpr.Schema.t ->
  (stats, Error.t) result
