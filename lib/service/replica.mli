(** The follower side of replication: apply committed leader entries
    through the ordinary {!Session} machinery (checked transactions,
    journaled to the follower's own journal), snapshot every
    [snapshot_every] entries, truncate the journal behind each durable
    snapshot, and crash-recover from snapshot + tail — bounded
    recovery. Snapshot failures (including the [replication.snapshot]
    fault site) are survivable: the previous snapshot stays in place
    and recovery replays a longer tail. *)

open Fdbs_kernel
open Fdbs_rpr

type t

(** Build a replica over [store] (whose configuration must be
    transactional with [journal] as its journal path), recovering from
    the follower's journal and snapshot if present. [snapshot_every]
    (default 64) is the snapshot/truncation period in entries. *)
val recover :
  ?snapshot_every:int ->
  store:Session.Store.t ->
  journal:string ->
  unit ->
  (t, Error.t) result

(** Apply fetched leader entries in order: duplicates are skipped,
    gaps and epoch regressions are structured errors, each applied
    entry re-runs as a checked transaction. The [replication.apply]
    fault site fires before each entry; a faulted entry is retried on
    the next fetch. *)
val apply : t -> Journal.stamped list -> (unit, Error.t) result

(** Install a leader snapshot (the follower fell behind the leader's
    truncation base): persist it durably, truncate the local journal
    behind it, and re-install the state through {!Session.replay}. *)
val install_snapshot : t -> Replication.snapshot -> (unit, Error.t) result

(** Absolute offset of the last applied entry. *)
val applied : t -> int

(** Highest epoch seen. *)
val epoch : t -> int

(** Offset of the last durable snapshot. *)
val snapshot_offset : t -> int

(** Entries re-applied by the last recovery — with periodic snapshots
    this stays ≤ the entries since the last snapshot. *)
val recovered_entries : t -> int

(** Leader unreachable: the replica keeps serving reads. *)
val degraded : t -> bool

val set_degraded : t -> bool -> unit

(** Record the leader's last known offset; the [replication.lag]
    gauge tracks the difference to [applied]. *)
val note_leader : t -> int -> unit

(** The apply session (whose store serves the replica's reads). *)
val session : t -> Session.t
