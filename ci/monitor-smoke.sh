#!/usr/bin/env bash
# Streaming monitor smoke: a leader serves the university schema with
# no monitors attached; a follower replicates it and hosts the
# monitors, so the leader pays nothing for monitoring. Build a
# 10k-commit history whose last commit breaks the theory's transition
# axiom (an offered course is cancelled) and require the violation to
# fire on the follower: its subscriber must receive the tagged event
# frame and its monitor status must count exactly one violation. Then
# measure leader commit latency with monitors attached directly vs
# without, and gate the overhead with gate.exe --monitor-overhead-max.
# Run from the repo root:
#   bash ci/monitor-smoke.sh
set -euo pipefail

rm -f leader.sock follower.sock plain.sock mon.sock \
  leader.journal follower.journal follower.journal.snap \
  leader.log follower.log plain.log mon.log sub.out \
  monitor-smoke.theory monitor-base.json monitor-current.json
dune build bin/fds.exe bench/gate.exe
fds=_build/default/bin/fds.exe
gate=_build/default/bench/gate.exe

# The static axiom mirrors the schema's constraint; the transition
# axiom (once offered, always offered) is the stronger promise the
# schema does NOT enforce -- cancel(c) breaks it.
cat > monitor-smoke.theory <<'EOF'
theory university

sort course
sort student

pred offered : course
pred takes : student, course

axiom static: ~(exists s:student, c:course. takes(s, c) & ~offered(c))

axiom no_retract: forall c:course. (offered(c) -> box offered(c))
EOF

$fds serve specs/university.schema --socket leader.sock --transactional \
  --journal leader.journal 2>leader.log &
leader=$!
for i in $(seq 1 100); do test -S leader.sock && break; sleep 0.1; done
# --enforce-monitors on a follower must downgrade to observing: the
# entries are already committed on the leader
$fds serve specs/university.schema --socket follower.sock \
  --journal follower.journal --follow leader.sock --snapshot-every 2000 \
  --monitors monitor-smoke.theory --enforce-monitors 2>follower.log &
follower=$!
for i in $(seq 1 100); do test -S follower.sock && break; sleep 0.1; done

# the leader hosts no monitors...
out=$($fds client --socket leader.sock --retries 10 '{"id": 1, "op": "monitor"}')
echo "$out"
echo "$out" | grep -q '"ok": false'
# ...the follower does, and advertises them in the v2 handshake
out=$($fds client --socket follower.sock --retries 10 \
  '{"id": 1, "op": "hello", "version": 2}')
echo "$out"
echo "$out" | grep -q '"monitors", "subscribe"'

# subscribe on the follower; the deterministic heartbeat confirms the
# subscription is live before any commit races it
$fds monitor --subscribe --socket follower.sock --events 1 > sub.out &
sub=$!
for i in $(seq 1 100); do test -s sub.out && break; sleep 0.1; done
grep -q '"event": "heartbeat"' sub.out

# a 10k-commit history: one initiate batch, 9998 offers streamed over
# one pipelined connection, and the violating cancel
$fds client --socket leader.sock \
  '{"id": 0, "op": "run", "calls": ["initiate()", "offer(cs101)"]}' >/dev/null
seq 1 9998 \
  | awk '{printf "{\"id\": %d, \"op\": \"run\", \"calls\": [\"offer(c%d)\"]}\n", $1, $1}' \
  | $fds client --socket leader.sock --quiet
$fds client --socket leader.sock \
  '{"id": 9999, "op": "run", "calls": ["cancel(cs101)"]}' >/dev/null

# the violation fires on the follower: the subscriber exits once the
# event frame arrives
for i in $(seq 1 300); do kill -0 "$sub" 2>/dev/null || break; sleep 0.1; done
wait "$sub"
cat sub.out
grep -q '"event": "violation", "monitor": "no_retract"' sub.out

out=$($fds client --socket follower.sock '{"id": 2, "op": "monitor"}')
echo "$out"
echo "$out" | grep -q '"commits": 10000, "violations": 1'
echo "$out" | grep -q '"mode": "observe"'
grep -q "followers cannot enforce monitors" follower.log

$fds client --socket follower.sock '{"id": 3, "op": "shutdown"}' >/dev/null
wait "$follower"
$fds client --socket leader.sock '{"id": 4, "op": "shutdown"}' >/dev/null
wait "$leader"
cat leader.log follower.log

# Leader commit latency overhead: the same warm commit stream against
# a bare server and against one with the monitors attached directly.
# The ratio is gated the same way the bench gate gates the E26 metric.
drive() { # drive SOCKET -> whole-stream nanoseconds
  seq 1 2000 \
    | awk '{printf "{\"id\": %d, \"op\": \"run\", \"calls\": [\"offer(c%d)\"]}\n", $1, $1}' \
    | $fds client --socket "$1" --quiet >/dev/null
  local t0 t1
  t0=$(date +%s%N)
  seq 2001 6000 \
    | awk '{printf "{\"id\": %d, \"op\": \"run\", \"calls\": [\"offer(c%d)\"]}\n", $1, $1}' \
    | $fds client --socket "$1" --quiet >/dev/null
  t1=$(date +%s%N)
  echo $((t1 - t0))
}

$fds serve specs/university.schema --socket plain.sock --transactional 2>plain.log &
plain=$!
for i in $(seq 1 100); do test -S plain.sock && break; sleep 0.1; done
$fds client --socket plain.sock --retries 10 \
  '{"id": 0, "op": "run", "calls": ["initiate()"]}' >/dev/null
plain_ns=$(drive plain.sock)
$fds client --socket plain.sock '{"id": 1, "op": "shutdown"}' >/dev/null
wait "$plain"

$fds serve specs/university.schema --socket mon.sock --transactional \
  --monitors monitor-smoke.theory 2>mon.log &
mon=$!
for i in $(seq 1 100); do test -S mon.sock && break; sleep 0.1; done
$fds client --socket mon.sock --retries 10 \
  '{"id": 0, "op": "run", "calls": ["initiate()"]}' >/dev/null
mon_ns=$(drive mon.sock)
$fds client --socket mon.sock '{"id": 1, "op": "shutdown"}' >/dev/null
wait "$mon"

ratio=$(awk "BEGIN { printf \"%.4f\", $mon_ns / $plain_ns }")
echo "leader commit latency: plain ${plain_ns}ns, monitored ${mon_ns}ns, ratio ${ratio}x"
cat > monitor-base.json <<'EOF'
{ "schema_version": 1, "cores": 1, "calibration_ns": 1.0, "metrics": {} }
EOF
cat > monitor-current.json <<EOF
{ "schema_version": 1, "cores": 1, "calibration_ns": 1.0, "metrics": {},
  "derived": { "monitor_commit_overhead": ${ratio} } }
EOF
$gate --baseline monitor-base.json --current monitor-current.json \
  --monitor-overhead-max 3
echo "monitor smoke ok"
