#!/usr/bin/env bash
# Fault-injection smoke: an injected fault must roll the transaction
# back — exit code 1, a "rolled back" diagnostic, and the restored
# state intact. Run from the repo root:
#   bash ci/fault-smoke.sh
set -euo pipefail

set +e
out=$(dune exec bin/fds.exe -- run specs/university.schema \
  --transactional --fault semantics.exec \
  -c 'initiate()' -c 'offer(cs101)')
code=$?
set -e
echo "$out"
test "$code" -eq 1
echo "$out" | grep -q "rolled back"
echo "$out" | grep -q "OFFERED = {}"
echo "fault smoke ok"
