#!/usr/bin/env bash
# Incremental-evaluation smoke: a journaled write burst replayed in one
# process must check its constraints differentially — the planner's
# materialized plans advance by per-commit deltas instead of
# re-evaluating from scratch. Asserts (1) `fds replay --check-constraints
# --stats` reports planner.delta_hit > 0 for the warm commits, (2) the
# incrementally-checked replay recovers byte-for-byte the state the
# naive-strategy replay recovers, and (3) `fds explain --delta` renders
# a derivative view per constraint. Run from the repo root:
#   bash ci/delta-smoke.sh
set -euo pipefail

rm -f delta-smoke.schema delta-smoke.journal delta-replay.out \
  delta-replay-naive.out delta-stats.txt
dune build bin/fds.exe
fds=_build/default/bin/fds.exe

cat > delta-smoke.schema <<'EOF'
schema deltasmoke
relation OFFERED(course)
relation TAKES(student, course)
constraint takes_offered: forall s:student. forall c:course. (TAKES(s, c) -> OFFERED(c))
constraint takes_nonempty: forall s:student. forall c:course. (TAKES(s, c) -> (exists c2:course. OFFERED(c2)))
proc offer(c: course) = insert OFFERED(c)
proc enroll(s: student, c: course) = insert TAKES(s, c)
proc leave(s: student, c: course) = delete TAKES(s, c)
end-schema
EOF

# the derivative views behind the differential layer must render for
# every compilable constraint
out=$($fds explain --delta delta-smoke.schema)
echo "$out"
echo "$out" | grep -q "delta view:"
echo "$out" | grep -qE "ΔOFFERED|ΔTAKES"

# a write burst of separate committed transactions, each appended to
# the same write-ahead journal (each `fds run` starts from the empty
# instance, so every transaction must hold on its own; replay then
# re-commits them cumulatively in one process)
run() {
  $fds run delta-smoke.schema --transactional --journal delta-smoke.journal \
    --check-constraints "$@" > /dev/null
}
run -c 'offer(cs101)' -c 'offer(cs202)'
run -c 'offer(cs101)' -c 'enroll(ana, cs101)'
run -c 'offer(cs202)' -c 'enroll(bob, cs202)'
run -c 'leave(ana, cs101)'
run -c 'offer(cs202)' -c 'enroll(ana, cs202)'

# replaying the journal re-commits the burst in one process: the first
# constraint check materializes the plans (delta_miss), every later
# commit advances them differentially (delta_hit), and nothing on this
# workload forces a fallback
$fds replay delta-smoke.schema delta-smoke.journal \
  --check-constraints --stats > delta-replay.out 2> delta-stats.txt
cat delta-stats.txt
grep -qE "planner.delta_hit +[1-9]" delta-stats.txt
grep -qE "planner.delta_fallback +0" delta-stats.txt

# differential checking must not change what recovery recovers: the
# naive-strategy replay of the same journal lands on the same state
$fds replay delta-smoke.schema delta-smoke.journal \
  --check-constraints --strategy naive > delta-replay-naive.out
cmp delta-replay.out delta-replay-naive.out

echo "delta smoke ok"
