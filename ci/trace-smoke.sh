#!/usr/bin/env bash
# Trace smoke: --trace must produce valid Chrome trace JSON, and with
# virtual timestamps the span tree — hence the file — must be
# byte-identical for -j 1 and -j 4. Run from the repo root:
#   bash ci/trace-smoke.sh
set -euo pipefail

dune build bench/trace_validate.exe
FDBS_TRACE_VIRTUAL_TS=1 dune exec bin/fds.exe -- \
  verify-files specs/university.theory specs/university.spec \
  specs/university.schema --depth 1 -j 1 --trace=trace-j1.json
FDBS_TRACE_VIRTUAL_TS=1 dune exec bin/fds.exe -- \
  verify-files specs/university.theory specs/university.spec \
  specs/university.schema --depth 1 -j 4 --trace=trace-j4.json
cmp trace-j1.json trace-j4.json
dune exec bench/trace_validate.exe -- trace-j1.json
dune exec bin/fds.exe -- verify --small --depth 1 \
  --trace=trace-builtin.json --stats
dune exec bench/trace_validate.exe -- trace-builtin.json
echo "trace smoke ok"
