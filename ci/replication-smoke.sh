#!/usr/bin/env bash
# Replication chaos smoke: a leader with injected faults (one aborted
# commit, one cut fetch stream) replicates to a follower over Unix
# sockets. SIGKILL the leader mid-stream: the follower must keep
# serving reads from its snapshot + journal, reject writes with a
# structured read-only error, and hold exactly the state a fresh
# replay of each surviving journal reproduces. Run from the repo root:
#   bash ci/replication-smoke.sh
set -euo pipefail

rm -f leader.sock follower.sock leader.journal follower.journal \
  follower.journal.snap leader.log follower.log \
  trace-leader.json trace-follower.json
dune build bin/fds.exe bench/trace_validate.exe
fds=_build/default/bin/fds.exe
FDBS_TRACE_VIRTUAL_TS=1 $fds serve specs/university.schema \
  --socket leader.sock --transactional --journal leader.journal \
  --fault txn.commit:2 --fault replication.fetch:3 \
  --trace=trace-leader.json 2>leader.log &
leader=$!
for i in $(seq 1 100); do test -S leader.sock && break; sleep 0.1; done
FDBS_TRACE_VIRTUAL_TS=1 $fds serve specs/university.schema \
  --socket follower.sock --journal follower.journal \
  --follow leader.sock --snapshot-every 2 \
  --trace=trace-follower.json 2>follower.log &
follower=$!
for i in $(seq 1 100); do test -S follower.sock && break; sleep 0.1; done
$fds client --socket leader.sock --retries 10 \
  '{"id": 1, "op": "run", "calls": ["initiate()", "offer(cs101)"]}' \
  '{"id": 2, "op": "run", "calls": ["offer(cs202)"]}'
# the armed txn.commit fault aborts this batch: it must roll back and
# stay out of the journal (and off the follower)
out=$($fds client --socket leader.sock \
  '{"id": 3, "op": "run", "calls": ["offer(cs303)"]}')
echo "$out"
echo "$out" | grep -q '"code": "fault-injected"'
$fds client --socket leader.sock \
  '{"id": 4, "op": "run", "calls": ["offer(cs404)"]}'
target=$($fds client --socket leader.sock '{"id": 0, "op": "state"}')
got=""
for i in $(seq 1 100); do
  got=$($fds client --socket follower.sock '{"id": 0, "op": "state"}')
  test "$got" = "$target" && break
  sleep 0.2
done
echo "$got"
test "$got" = "$target"
kill -9 "$leader"
wait "$leader" || true
for i in $(seq 1 100); do
  grep -q "unreachable" follower.log && break
  sleep 0.1
done
out=$($fds client --socket follower.sock \
  '{"id": 5, "op": "query", "wff": "exists c:course. OFFERED(c)"}' \
  '{"id": 6, "op": "run", "calls": ["offer(cs505)"]}')
echo "$out"
echo "$out" | grep -q '"id": 5, "ok": true, "result": true'
echo "$out" | grep -q '"code": "read-only"'
$fds client --socket follower.sock '{"id": 7, "op": "shutdown"}'
wait "$follower"
cat leader.log follower.log
grep -q "unreachable; serving reads only" follower.log
# both surviving journals replay to the same committed state
lrep=$($fds replay specs/university.schema leader.journal | sed -n '/final state:/,$p')
frep=$($fds replay specs/university.schema follower.journal | sed -n '/final state:/,$p')
echo "$lrep"
test -n "$lrep"
test "$lrep" = "$frep"
# the follower's recovery is snapshot-bounded
$fds replay specs/university.schema follower.journal | grep -q "installed snapshot"
dune exec bench/trace_validate.exe -- trace-follower.json
echo "replication smoke ok"
