#!/usr/bin/env bash
# Parallel verification smoke: --jobs must not change the verification
# output, byte for byte. Run from the repo root (CI wraps this in
# `opam exec`; locally any shell with dune on PATH works):
#   bash ci/parallel-smoke.sh
set -euo pipefail

one=$(dune exec bin/fds.exe -- verify --small --depth 1 --jobs 1)
all=$(dune exec bin/fds.exe -- verify --small --depth 1 --jobs 0)
test "$one" = "$all"
echo "$one" | grep -q "VERIFIED"
echo "parallel smoke ok"
