#!/usr/bin/env bash
# Gateway smoke: the production edge under load.
#   1. 100 concurrent client connections, each pipelining 5 requests
#      over a pooled connection, are all served to completion.
#   2. Two tenant namespaces over the same schema: writes are isolated,
#      journals are per-namespace, and the second tenant compiles no
#      new plans (the planner cache is shared by schema fingerprint).
#   3. A rate-limited server answers over-limit requests with a
#      structured "overloaded" error carrying a retry hint — every
#      request gets a reply; nothing hangs.
# Run from the repo root: bash ci/gateway-smoke.sh
set -euo pipefail

rm -f gw.sock gwrl.sock gw.journal gw.journal.* gw.log gwrl.log
rm -rf gw-out && mkdir -p gw-out
dune build bin/fds.exe
fds=_build/default/bin/fds.exe

$fds serve specs/university.schema --socket gw.sock --transactional \
  --journal gw.journal --auth-token smoke --workers 4 2>gw.log &
server=$!
for i in $(seq 1 100); do test -S gw.sock && break; sleep 0.1; done

# --- 1: 100 concurrent connections, 5 pipelined pings each ----------
pids=()
for i in $(seq 1 100); do
  timeout 60 $fds client --socket gw.sock --retries 10 \
    --requests 5 --quiet '{"id": 1, "op": "ping"}' >"gw-out/$i" &
  pids+=($!)
done
for p in "${pids[@]}"; do wait "$p"; done
test "$(cat gw-out/* | grep -c '^5 responses$')" -eq 100
echo "smoke: 100 concurrent connections served"

# --- 2: multi-tenant isolation + shared planner cache ---------------
# Warm the query plan on tenant t1, then read the global planner-miss
# counter; tenant t2 runs the identical query against its own (empty)
# store and must add zero misses.
out1=$($fds client --socket gw.sock --retries 10 \
  '{"id": 1, "op": "attach", "namespace": "t1", "token": "smoke"}' \
  '{"id": 2, "op": "run", "calls": ["initiate()", "offer(cs101)"]}' \
  '{"id": 3, "op": "query", "wff": "exists c:course. OFFERED(c)"}' \
  '{"id": 4, "op": "stats"}')
echo "$out1" | grep -q '"result": true'
m_before=$(echo "$out1" | grep -o '"planner_misses": [0-9]*' | tail -1)
out2=$($fds client --socket gw.sock --retries 10 \
  '{"id": 5, "op": "attach", "namespace": "t2", "token": "smoke"}' \
  '{"id": 6, "op": "query", "wff": "exists c:course. OFFERED(c)"}' \
  '{"id": 7, "op": "stats"}')
echo "$out2" | grep -q '"result": false'
m_after=$(echo "$out2" | grep -o '"planner_misses": [0-9]*' | tail -1)
test "$m_before" = "$m_after"
$fds client --socket gw.sock --retries 10 \
  '{"id": 8, "op": "attach", "namespace": "t1", "token": "nope"}' \
  | grep -q '"code": "unauthorized"'
echo "smoke: namespaces isolated, planner cache shared ($m_before)"

$fds client --socket gw.sock '{"id": 9, "op": "shutdown"}' >/dev/null
wait "$server"
grep -q "server stopped" gw.log
grep -q "^commit$" gw.journal.t1
test ! -f gw.journal.t2
test ! -S gw.sock

# --- 3: admission control rejects with structure, never hangs -------
$fds serve specs/university.schema --socket gwrl.sock \
  --rate-limit 2 --rate-burst 2 --workers 2 2>gwrl.log &
server2=$!
for i in $(seq 1 100); do test -S gwrl.sock && break; sleep 0.1; done
out3=$(timeout 60 $fds client --socket gwrl.sock --retries 10 \
  --requests 10 '{"id": 1, "op": "ping"}')
test "$(echo "$out3" | wc -l)" -eq 10
echo "$out3" | grep -q '"code": "overloaded"'
echo "$out3" | grep -q '"retry-after-ms"'
rejected=$(echo "$out3" | grep -c '"code": "overloaded"')
echo "smoke: $rejected/10 over-limit requests rejected with retry hint"

$fds client --socket gwrl.sock '{"id": 99, "op": "shutdown"}' >/dev/null
wait "$server2"
test ! -S gwrl.sock
echo "gateway smoke ok"
