#!/usr/bin/env bash
# Service smoke: boot the fds serve daemon on a Unix socket, drive it
# with two client connections, stop it with a shutdown request, and
# check that the graceful stop flushed the journal, unlinked the
# socket, and emitted a valid trace artifact. Run from the repo root:
#   bash ci/service-smoke.sh
set -euo pipefail

rm -f fds.sock serve.journal serve.journal.snap serve.log trace-serve.json
dune build bin/fds.exe bench/trace_validate.exe
fds=_build/default/bin/fds.exe
FDBS_TRACE_VIRTUAL_TS=1 $fds serve specs/university.schema \
  --socket fds.sock --transactional --journal serve.journal \
  --trace=trace-serve.json 2>serve.log &
server=$!
for i in $(seq 1 100); do test -S fds.sock && break; sleep 0.1; done
out=$($fds client --socket fds.sock --retries 10 \
  '{"id": 1, "op": "ping"}' \
  '{"id": 2, "op": "run", "calls": ["initiate()", "offer(cs101)"]}' \
  '{"id": 3, "op": "query", "wff": "exists c:course. OFFERED(c)"}')
echo "$out"
test "$(echo "$out" | grep -c '"ok": true')" -eq 3
$fds client --socket fds.sock '{"id": 4, "op": "shutdown"}'
wait "$server"
cat serve.log
grep -q "server stopped" serve.log
grep -q "^commit$" serve.journal
test ! -S fds.sock
dune exec bench/trace_validate.exe -- trace-serve.json
echo "service smoke ok"
