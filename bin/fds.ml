(* fds — the formal database specification toolkit.

   Subcommands:
     verify        full verification pipeline on the built-in university
                   design (paper Sections 4.4 and 5.4)
     verify-files  the same pipeline on a (theory, spec, schema) triple
                   of files bound by the canonical name correspondence
     check-spec    parse an algebraic specification file and check
                   sufficient completeness
     check-schema  parse an RPR schema file and check well-formedness
     grammar       check a schema file against the RPR W-grammar
     analyze       critical pairs / observability of a specification
     derive        structured descriptions -> conditional equations
     synthesize    structured descriptions -> RPR procedures
     eval          evaluate a ground query term (--trace shows the
                   rewriting derivation)
     run           execute a sequence of procedure calls against a schema
     demo          a compact tour of the framework *)

open Cmdliner
open Fdbs_kernel

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let exit_err fmt = Fmt.kstr (fun s -> Fmt.epr "fds: %s@." s; exit 1) fmt

(* --jobs/-j, shared by the verification subcommands; 0 means "use the
   machine's available parallelism". Also settable via FDBS_JOBS. *)
let jobs_arg =
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Spread the verification sweeps over N domains (0 = all \
               available cores). Defaults to \\$FDBS_JOBS or 1; the \
               results are identical for every N.")

let apply_jobs = function
  | None -> ()
  | Some 0 -> Pool.set_default_jobs (Pool.recommended_jobs ())
  | Some n -> Pool.set_default_jobs n

(* --trace[=FILE] / --stats, shared by the execution and verification
   subcommands. The trace file and the stats snapshot are emitted from
   an [at_exit] hook, so they appear even on the [exit 1] failure
   paths. *)
let trace_arg =
  Arg.(value & opt ~vopt:(Some "trace.json") (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record hierarchical spans of the run and write them as \
                 Chrome-trace-format JSON to FILE (default trace.json); open \
                 in chrome://tracing or Perfetto. With \
                 \\$FDBS_TRACE_VIRTUAL_TS set, timestamps are deterministic \
                 pre-order ranks, so traces of the same workload are \
                 byte-identical for every --jobs value.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print the process-wide metrics snapshot (counters and latency \
               histograms) to stderr when the subcommand finishes.")

let observe trace stats =
  if trace <> None || stats then
    at_exit (fun () ->
        (match trace with
         | None -> ()
         | Some file ->
           Trace.set_enabled false;
           let virtual_ts = Sys.getenv_opt "FDBS_TRACE_VIRTUAL_TS" <> None in
           let spans = Trace.write_chrome ~virtual_ts file in
           Fmt.epr "fds: wrote Chrome trace to %s (%d spans)@." file spans);
        if stats then
          Fmt.epr "@[<v>metrics:@,%a@]@." Metrics.pp_snapshot (Metrics.snapshot ()));
  if trace <> None then Trace.set_enabled true

(* ------------------------------------------------------------------ *)
(* verify                                                              *)
(* ------------------------------------------------------------------ *)

let verify_cmd =
  let small =
    Arg.(value & flag & info [ "small" ] ~doc:"Use the 1-course/1-student domain.")
  in
  let depth =
    Arg.(value & opt int 2 & info [ "depth" ] ~docv:"N"
           ~doc:"Ground-probing and agreement sweep depth.")
  in
  let run small depth jobs trace stats =
    let open Fdbs in
    apply_jobs jobs;
    observe trace stats;
    let domain = if small then University.small_domain else University.domain in
    Fmt.pr "verifying the university design (domain: %s, depth %d)...@."
      (if small then "1x1" else "2x2") depth;
    let v = Design.verify ~domain ~depth University.design in
    Fmt.pr "%a@." Design.pp_verification v;
    if Design.verified v then Fmt.pr "VERIFIED@." else exit 1
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify the built-in university design end to end.")
    Term.(const run $ small $ depth $ jobs_arg $ trace_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* check-spec                                                          *)
(* ------------------------------------------------------------------ *)

let spec_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC-FILE")

let check_spec_cmd =
  let depth =
    Arg.(value & opt int 2 & info [ "depth" ] ~docv:"N" ~doc:"Ground-probing depth.")
  in
  let run path depth =
    match Fdbs_algebra.Aparser.spec (read_file path) with
    | Error e -> exit_err "%s" e
    | Ok spec ->
      Fmt.pr "%a@.@." Fdbs_algebra.Spec.pp spec;
      let report = Fdbs_algebra.Completeness.check ~depth spec in
      Fmt.pr "%a@." Fdbs_algebra.Completeness.pp_report report;
      if not (Fdbs_algebra.Completeness.is_complete report) then exit 1
  in
  Cmd.v
    (Cmd.info "check-spec"
       ~doc:"Parse an algebraic specification and check sufficient completeness.")
    Term.(const run $ spec_file $ depth)

(* ------------------------------------------------------------------ *)
(* check-schema / grammar                                              *)
(* ------------------------------------------------------------------ *)

let schema_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA-FILE")

let check_schema_cmd =
  let run path =
    match Fdbs_rpr.Rparser.schema (read_file path) with
    | Error e -> exit_err "%s" e
    | Ok schema ->
      Fmt.pr "%a@.@." Fdbs_rpr.Schema.pp schema;
      Fmt.pr "well-formed: every relation declared, every wff well-sorted.@."
  in
  Cmd.v
    (Cmd.info "check-schema"
       ~doc:"Parse an RPR schema and check context-sensitive well-formedness.")
    Term.(const run $ schema_file)

let grammar_cmd =
  let run path =
    let src = read_file path in
    match Fdbs_wgrammar.Rpr_grammar.check_source src with
    | Ok () -> Fmt.pr "generated by the RPR W-grammar: yes@."
    | Error e ->
      Fmt.pr "generated by the RPR W-grammar: NO (%s)@." e;
      exit 1
  in
  Cmd.v
    (Cmd.info "grammar"
       ~doc:"Check a schema text against the RPR W-grammar (Section 5.1.1).")
    Term.(const run $ schema_file)

(* ------------------------------------------------------------------ *)
(* eval                                                                *)
(* ------------------------------------------------------------------ *)

let eval_cmd =
  let term_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TERM"
           ~doc:"Ground term, e.g. 'offered(cs101, offer(cs101, initiate))'.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Print the rewriting derivation, innermost step first.")
  in
  let run path src trace =
    match Fdbs_algebra.Aparser.spec (read_file path) with
    | Error e -> exit_err "%s" e
    | Ok spec ->
      (match Fdbs_algebra.Aparser.term spec.Fdbs_algebra.Spec.signature src with
       | Error e -> exit_err "%s" e
       | Ok t ->
         if trace then
           match Fdbs_algebra.Eval.explain spec t with
           | Ok (v, steps) ->
             List.iter
               (fun s -> Fmt.pr "  %a@." Fdbs_algebra.Eval.pp_step s)
               steps;
             Fmt.pr "%a@." Value.pp v
           | Error e -> exit_err "%a" Fdbs_algebra.Eval.pp_error e
         else
           match Fdbs_algebra.Eval.query spec t with
           | Ok v -> Fmt.pr "%a@." Value.pp v
           | Error e -> exit_err "%a" Fdbs_algebra.Eval.pp_error e)
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Evaluate a ground query term against an algebraic specification.")
    Term.(const run $ spec_file $ term_arg $ trace)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

(* parse "name(arg1, arg2)" into (name, [Sym arg1; Sym arg2]) *)
let parse_call (s : string) : (string * Value.t list, string) result =
  match String.index_opt s '(' with
  | None -> Ok (String.trim s, [])
  | Some i ->
    let name = String.trim (String.sub s 0 i) in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match String.index_opt rest ')' with
     | None -> Error (Fmt.str "missing ')' in call %S" s)
     | Some j ->
       let args = String.sub rest 0 j in
       let args =
         if String.trim args = "" then []
         else
           String.split_on_char ',' args
           |> List.map (fun a ->
                  let a = String.trim a in
                  match int_of_string_opt a with
                  | Some n -> Value.Int n
                  | None -> Value.Sym a)
       in
       Ok (name, args))

(* active domain: all argument values, keyed by the procedures'
   declared parameter sorts *)
let domain_of_calls schema (parsed : (string * Value.t list) list) : Domain.t =
  List.fold_left
    (fun d (name, args) ->
      match Fdbs_rpr.Schema.find_proc schema name with
      | None -> exit_err "unknown procedure %s" name
      | Some p ->
        (try
           List.fold_left2
             (fun d (_, srt) v -> Domain.add srt (v :: Domain.carrier d srt) d)
             d p.Fdbs_rpr.Schema.pparams args
         with Invalid_argument _ ->
           exit_err "procedure %s: arity mismatch" name))
    Domain.empty parsed

let arm_faults specs =
  List.iter
    (fun spec ->
      match Fault.arm_spec spec with
      | Ok () -> ()
      | Error e -> exit_err "--fault %s: %s" spec e)
    specs

let budget_of ~steps ~ms =
  match (steps, ms) with
  | None, None -> None
  | _ -> Some (Budget.make ?steps ?ms ())

(* transaction flags shared by run and replay *)
let check_constraints_arg =
  Arg.(value & flag & info [ "check-constraints" ]
         ~doc:"Check the schema's integrity constraints at commit time.")

let budget_steps_arg =
  Arg.(value & opt (some int) None & info [ "budget-steps" ] ~docv:"N"
         ~doc:"Step fuel: abort (and roll back) after N statement executions.")

let budget_ms_arg =
  Arg.(value & opt (some int) None & info [ "budget-ms" ] ~docv:"MS"
         ~doc:"Wall-clock deadline in milliseconds for the transaction.")

let fault_arg =
  Arg.(value & opt_all string [] & info [ "fault" ] ~docv:"SITE[:AFTER][:ACTION]"
         ~doc:"Inject a fault at a site (e.g. semantics.exec, txn.commit); \
               ACTION is abort (default), exhaust-steps, exhaust-states, \
               exhaust-time, or flip.")

let strategy_arg =
  let strategy_conv =
    Arg.enum [ ("auto", `Auto); ("naive", `Naive); ("compiled", `Compiled) ]
  in
  Arg.(value & opt strategy_conv `Auto & info [ "strategy" ] ~docv:"STRATEGY"
         ~doc:"Evaluation strategy for relational terms and wffs: \
               $(b,auto) runs compiled plans for safe bodies and falls back \
               to naive enumeration, $(b,compiled) requires every body to \
               compile (structured not-compilable error otherwise), \
               $(b,naive) always enumerates the carriers.")

let run_cmd =
  let calls =
    Arg.(value & opt_all string [] & info [ "call"; "c" ] ~docv:"CALL"
           ~doc:"Procedure call, e.g. 'offer(cs101)'. Repeatable; applied in order.")
  in
  let transactional =
    Arg.(value & flag & info [ "transactional" ]
           ~doc:"Run all calls as one atomic transaction: commit everything \
                 or roll back to the initial state with a structured error.")
  in
  let journal =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE"
           ~doc:"Append committed transactions to this write-ahead journal.")
  in
  let run path calls transactional check_constraints steps ms journal faults
      strategy trace stats =
    observe trace stats;
    match Fdbs_rpr.Rparser.schema (read_file path) with
    | Error e -> exit_err "%s" e
    | Ok schema ->
      let parsed =
        List.map
          (fun c -> match parse_call c with Ok x -> x | Error e -> exit_err "%s" e)
          calls
      in
      let domain = domain_of_calls schema parsed in
      let env = Fdbs_rpr.Semantics.env ~strategy ~domain schema in
      let db0 = Fdbs_rpr.Schema.empty_db schema in
      arm_faults faults;
      if transactional then begin
        let txn = Fdbs_rpr.Txn.make ~check_constraints ?journal env in
        match Fdbs_rpr.Txn.run ?budget:(budget_of ~steps ~ms) txn parsed db0 with
        | Ok final ->
          Fmt.pr "committed %d calls@.@.final state:@.%a@." (List.length parsed)
            Fdbs_rpr.Db.pp final;
        | Error rb ->
          Fmt.pr "transaction %a@.@.restored state:@.%a@." Fdbs_rpr.Txn.pp_rollback rb
            Fdbs_rpr.Db.pp rb.Fdbs_rpr.Txn.restored;
          exit 1
      end
      else
        let final =
          List.fold_left
            (fun db (name, args) ->
              match Fdbs_rpr.Semantics.call_det env name args db with
              | Ok db' ->
                Fmt.pr "%s(%a) ok@." name Fmt.(list ~sep:(any ", ") Value.pp) args;
                db'
              | Error e -> exit_err "%s: %s" name e)
            db0 parsed
        in
        Fmt.pr "@.final state:@.%a@." Fdbs_rpr.Db.pp final
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a sequence of procedure calls against a schema.")
    Term.(const run $ schema_file $ calls $ transactional $ check_constraints_arg
          $ budget_steps_arg $ budget_ms_arg $ journal $ fault_arg $ strategy_arg
          $ trace_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let run path =
    match Fdbs_rpr.Rparser.schema (read_file path) with
    | Error e -> exit_err "%s" e
    | Ok schema ->
      let open Fdbs_rpr in
      let db = Schema.empty_db schema in
      let rel_arity r = List.length (Schema.sorts_of schema r) in
      let rec rels_of acc = function
        | Relalg.Rel r -> if List.mem r acc then acc else r :: acc
        | Relalg.Singleton _ | Relalg.Empty _ -> acc
        | Relalg.Select (_, e) | Relalg.Project (_, e) -> rels_of acc e
        | Relalg.Product (a, b) | Relalg.Union (a, b) -> rels_of (rels_of acc a) b
        | Relalg.Join (es, _) -> List.fold_left rels_of acc es
        | Relalg.Antijoin (a, b, _) -> rels_of (rels_of acc a) b
      in
      (* live cardinalities drive the greedy join order at eval time;
         against the schema's empty instance they are all 0 *)
      let pp_cards ppf e =
        match List.rev (rels_of [] e) with
        | [] -> Fmt.string ppf "none"
        | rels ->
          Fmt.(list ~sep:(any ", ") (fun ppf r ->
                   Fmt.pf ppf "|%s| = %d" r (Relation.cardinal (Db.relation_exn db r))))
            ppf rels
      in
      let explain_plan = function
        | Result.Error offender ->
          Fmt.pr "  not compilable: %a falls outside the safe fragment@."
            Fdbs_logic.Formula.pp offender;
          Fmt.pr "  (evaluated by naive enumeration of the carriers)@."
        | Ok plan ->
          let optimized = Relalg.optimize ~rel_arity plan in
          Fmt.pr "  plan:      %a@." Relalg.pp plan;
          Fmt.pr "  optimized: %a@." Relalg.pp optimized;
          Fmt.pr "  live cardinalities: %a@." pp_cards optimized
      in
      Fmt.pr "schema %s: query plans@." schema.Schema.name;
      List.iter
        (fun (name, wff) ->
          Fmt.pr "@.constraint %s:@." name;
          Fmt.pr "  wff:       %a@." Fdbs_logic.Formula.pp wff;
          explain_plan (Relalg.compile_wff_explain wff))
        schema.Schema.constraints;
      List.iter
        (fun (p : Schema.proc) ->
          let body = Stmt.desugar ~sorts_of:(Schema.sorts_of schema) p.Schema.body in
          let rec go = function
            | Stmt.Rel_assign (r, rt) ->
              Fmt.pr "@.proc %s: %s := %a@." p.Schema.pname r Stmt.pp_rterm rt;
              explain_plan (Relalg.compile_explain rt)
            | Stmt.Seq (a, b) | Stmt.Union (a, b) ->
              go a;
              go b
            | Stmt.Star s -> go s
            | Stmt.If (_, a, b) ->
              go a;
              go b
            | Stmt.While (_, s) -> go s
            | Stmt.Skip | Stmt.Scalar_assign _ | Stmt.Test _ | Stmt.Insert _
            | Stmt.Delete _ -> ()
          in
          go body)
        schema.Schema.procs
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the query plans of a schema: every constraint wff and every \
          (desugared) relational term, as compiled and as optimized, with the \
          live cardinality estimates the join order draws on.")
    Term.(const run $ schema_file)

(* ------------------------------------------------------------------ *)
(* replay                                                              *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let journal =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"JOURNAL-FILE")
  in
  let run path journal check_constraints steps ms trace stats =
    observe trace stats;
    match Fdbs_rpr.Rparser.schema (read_file path) with
    | Error e -> exit_err "%s" e
    | Ok schema ->
      let entries, torn =
        match Fdbs_rpr.Journal.load journal with
        | Ok (es, torn) -> (es, torn)
        | Error e -> exit_err "%s" (Fdbs_kernel.Error.to_string e)
      in
      (match torn with
       | Some what -> Fmt.epr "fds: warning: journal %s: %s@." journal what
       | None -> ());
      let all_calls = List.concat_map (fun e -> e.Fdbs_rpr.Journal.calls) entries in
      let domain = domain_of_calls schema all_calls in
      let env = Fdbs_rpr.Semantics.env ~domain schema in
      let txn = Fdbs_rpr.Txn.make ~check_constraints env in
      (match
         Fdbs_rpr.Txn.replay ?budget:(budget_of ~steps ~ms) txn journal
           (Fdbs_rpr.Schema.empty_db schema)
       with
       | Ok final ->
         Fmt.pr "replayed %d transactions (%d calls)@.@.final state:@.%a@."
           (List.length entries) (List.length all_calls) Fdbs_rpr.Db.pp final
       | Error e ->
         Fmt.epr "fds: replay failed: %s@." (Fdbs_kernel.Error.to_string e);
         exit 1)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Recover the committed state by replaying a write-ahead journal \
             against a schema.")
    Term.(const run $ schema_file $ journal $ check_constraints_arg
          $ budget_steps_arg $ budget_ms_arg $ trace_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* verify-files                                                        *)
(* ------------------------------------------------------------------ *)

let verify_files_cmd =
  let theory_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"THEORY-FILE")
  in
  let spec_pos =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"SPEC-FILE")
  in
  let schema_pos =
    Arg.(required & pos 2 (some file) None & info [] ~docv:"SCHEMA-FILE")
  in
  let depth =
    Arg.(value & opt int 2 & info [ "depth" ] ~docv:"N"
           ~doc:"Ground-probing and agreement sweep depth.")
  in
  let run theory_path spec_path schema_path depth jobs trace stats =
    apply_jobs jobs;
    observe trace stats;
    let info =
      match Fdbs_temporal.Tparser.theory (read_file theory_path) with
      | Ok t -> t
      | Error e -> exit_err "%s: %s" theory_path e
    in
    let functions =
      match Fdbs_algebra.Aparser.spec (read_file spec_path) with
      | Ok s -> s
      | Error e -> exit_err "%s: %s" spec_path e
    in
    let representation =
      match Fdbs_rpr.Rparser.schema (read_file schema_path) with
      | Ok s -> s
      | Error e -> exit_err "%s: %s" schema_path e
    in
    let design =
      match
        Fdbs.Design.canonical ~name:info.Fdbs_temporal.Ttheory.name ~info ~functions
          ~representation
      with
      | Ok d -> d
      | Error e -> exit_err "%s" e
    in
    Fmt.pr "verifying design %s (domain: the spec's parameter names, depth %d)...@."
      info.Fdbs_temporal.Ttheory.name depth;
    let v = Fdbs.Design.verify ~depth design in
    Fmt.pr "%a@." Fdbs.Design.pp_verification v;
    if Fdbs.Design.verified v then Fmt.pr "VERIFIED@." else exit 1
  in
  Cmd.v
    (Cmd.info "verify-files"
       ~doc:
         "Verify a three-level design given as files (theory, algebraic \
          specification, schema) bound by the canonical name correspondence.")
    Term.(const run $ theory_file $ spec_pos $ schema_pos $ depth $ jobs_arg
          $ trace_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let depth =
    Arg.(value & opt int 2 & info [ "depth" ] ~docv:"N"
           ~doc:"Ground instance depth for joinability.")
  in
  let run path depth =
    match Fdbs_algebra.Aparser.spec (read_file path) with
    | Error e -> exit_err "%s" e
    | Ok spec ->
      let open Fdbs_algebra in
      Fmt.pr "== sufficient completeness ==@.";
      Fmt.pr "%a@.@." Completeness.pp_report (Completeness.check ~depth spec);
      Fmt.pr "== critical pairs / confluence ==@.";
      (match Confluence.check ~depth spec with
       | Error e -> exit_err "%a" Eval.pp_error e
       | Ok report ->
         Fmt.pr "%a@.@." Confluence.pp_report report;
         Fmt.pr "== observability ==@.";
         (match Reach.explore spec with
          | Error e -> exit_err "%a" Eval.pp_error e
          | Ok g ->
            Fmt.pr "reachable quotient: %a@." Reach.pp_stats g;
            Fmt.pr "full query set identifies every state: %b@."
              (Observability.observable g);
            Fmt.pr "%a@." Observability.pp_ablation (Observability.ablation spec g)))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static analyses of an algebraic specification: completeness, \
          critical pairs, observability ablation.")
    Term.(const run $ spec_file $ depth)

(* ------------------------------------------------------------------ *)
(* derive / synthesize                                                 *)
(* ------------------------------------------------------------------ *)

let parse_with_descriptions path =
  match Fdbs_algebra.Aparser.spec_with_descriptions (read_file path) with
  | Error e -> exit_err "%s" e
  | Ok (spec, []) ->
    ignore spec;
    exit_err "%s contains no 'describe' blocks" path
  | Ok (spec, descriptions) -> (spec, descriptions)

let derive_cmd =
  let run path =
    let spec, descriptions = parse_with_descriptions path in
    let sg = spec.Fdbs_algebra.Spec.signature in
    match Fdbs_algebra.Derive.equations sg descriptions with
    | Error e -> exit_err "%s" e
    | Ok eqs ->
      Fmt.pr "# equations derived from the structured descriptions (Sec 4.2)@.";
      List.iter (fun eq -> Fmt.pr "%a@." Fdbs_algebra.Equation.pp eq) eqs
  in
  Cmd.v
    (Cmd.info "derive"
       ~doc:
         "Derive conditional equations from a specification's structured \
          descriptions (the paper's constructive method, Section 4.2).")
    Term.(const run $ spec_file)

let synthesize_cmd =
  let run path =
    let spec, descriptions = parse_with_descriptions path in
    let sg = spec.Fdbs_algebra.Spec.signature in
    match
      Fdbs_refine.Synthesize.schema ~name:spec.Fdbs_algebra.Spec.name sg descriptions
    with
    | Error e -> exit_err "%s" e
    | Ok schema -> Fmt.pr "%a@." Fdbs_rpr.Schema.pp schema
  in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:
         "Synthesize representation-level procedures from structured \
          descriptions (the paper's constructive pattern, Section 5.2).")
    Term.(const run $ spec_file)

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_cmd =
  let depth =
    Arg.(value & opt int 1 & info [ "depth" ] ~docv:"N"
           ~doc:"Ground-probing and agreement sweep depth of the workload.")
  in
  let run depth jobs =
    let open Fdbs in
    apply_jobs jobs;
    let v =
      Design.verify ~domain:University.small_domain ~depth University.design
    in
    ignore (Design.verified v);
    Fmt.pr "%a@." Metrics.pp_snapshot (Metrics.snapshot ())
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the built-in university verification (small domain) and print \
          the metrics snapshot it produces: every process-wide counter and \
          latency histogram of the toolkit, by name. Use --stats on the \
          other subcommands to snapshot their own workloads.")
    Term.(const run $ depth $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* demo                                                                *)
(* ------------------------------------------------------------------ *)

let demo_cmd =
  let run () =
    let open Fdbs in
    Fmt.pr "fdbs: formal database specification, an eclectic perspective@.";
    Fmt.pr "(Casanova, Veloso & Furtado, PODS 1984)@.@.";
    Fmt.pr "The university example, three levels:@.@.";
    Fmt.pr "T1 (temporal): %s@." University.static_axiom_src;
    Fmt.pr "               %s@.@." University.transition_axiom_src;
    Fmt.pr "T2 (algebraic): %d conditional equations@."
      (List.length University.functions.Fdbs_algebra.Spec.equations);
    Fmt.pr "T3 (RPR): %d relations, %d procedures@.@."
      (List.length University.representation.Fdbs_rpr.Schema.relations)
      (List.length University.representation.Fdbs_rpr.Schema.procs);
    let v = Design.verify ~domain:University.small_domain ~depth:2 University.design in
    Fmt.pr "%a@.@." Design.pp_verification v;
    Fmt.pr "Run 'fds verify' for the full 2x2 check, or the examples:@.";
    Fmt.pr "  dune exec examples/quickstart.exe@.";
    Fmt.pr "  dune exec examples/library_loans.exe@.";
    Fmt.pr "  dune exec examples/banking.exe@."
  in
  Cmd.v (Cmd.info "demo" ~doc:"A compact tour of the framework.") Term.(const run $ const ())

let () =
  let info =
    Cmd.info "fds" ~version:"1.0.0"
      ~doc:"Formal database specification at three bound levels (PODS 1984)."
  in
  (* Top-level robustness: any exception that escapes a subcommand —
     unreadable files, execution errors, parse failures on paths that
     bypass argument validation — exits 2 with a one-line message
     instead of an OCaml backtrace. *)
  let code =
    try
      Cmd.eval ~catch:false
        (Cmd.group info
           [ verify_cmd; verify_files_cmd; check_spec_cmd; check_schema_cmd;
             grammar_cmd; analyze_cmd; derive_cmd; synthesize_cmd; eval_cmd;
             explain_cmd; run_cmd; replay_cmd; stats_cmd; demo_cmd ])
    with
    | Sys_error msg -> Fmt.epr "fds: %s@." msg; 2
    | Fdbs_rpr.Semantics.Exec_error msg -> Fmt.epr "fds: execution error: %s@." msg; 2
    | Error.Error e -> Fmt.epr "fds: %s@." (Error.to_string e); 2
    | Budget.Exhausted r ->
      Fmt.epr "fds: budget exhausted (%s)@." (Budget.resource_name r); 2
    | Fault.Injected site -> Fmt.epr "fds: fault injected at %s@." site; 2
    | Parse.Error (msg, _) -> Fmt.epr "fds: parse error: %s@." msg; 2
    | Invalid_argument msg | Failure msg -> Fmt.epr "fds: %s@." msg; 2
  in
  exit code
