(* fds — the formal database specification toolkit.

   Subcommands:
     verify        full verification pipeline on the built-in university
                   design (paper Sections 4.4 and 5.4)
     verify-files  the same pipeline on a (theory, spec, schema) triple
                   of files bound by the canonical name correspondence
     check-spec    parse an algebraic specification file and check
                   sufficient completeness
     check-schema  parse an RPR schema file and check well-formedness
     grammar       check a schema file against the RPR W-grammar
     analyze       critical pairs / observability of a specification
     derive        structured descriptions -> conditional equations
     synthesize    structured descriptions -> RPR procedures
     eval          evaluate a ground query term (--trace shows the
                   rewriting derivation)
     run           execute a sequence of procedure calls against a schema
     serve         long-running daemon: sessions over a socket
     client        send protocol requests to a running server
     demo          a compact tour of the framework

   The execution subcommands (run, eval, explain, replay) are thin
   clients of Fdbs_service.Session — the same code path the serve
   daemon drives — so CLI and server behavior cannot drift. *)

open Cmdliner
open Fdbs_kernel
module Session = Fdbs_service.Session
module Protocol = Fdbs_service.Protocol
module Server = Fdbs_service.Server

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let exit_err fmt = Fmt.kstr (fun s -> Fmt.epr "fds: %s@." s; exit 1) fmt

(* --jobs/-j, shared by the verification subcommands; 0 means "use the
   machine's available parallelism". Also settable via FDBS_JOBS. *)
let jobs_arg =
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Spread the verification sweeps over N domains (0 = all \
               available cores). Defaults to \\$FDBS_JOBS or 1; the \
               results are identical for every N.")

let apply_jobs = function
  | None -> ()
  | Some 0 -> Pool.set_default_jobs (Pool.recommended_jobs ())
  | Some n -> Pool.set_default_jobs n

(* --trace[=FILE] / --stats, shared by the execution and verification
   subcommands. The trace file and the stats snapshot are emitted from
   an [at_exit] hook, so they appear even on the [exit 1] failure
   paths. *)
let trace_arg =
  Arg.(value & opt ~vopt:(Some "trace.json") (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record hierarchical spans of the run and write them as \
                 Chrome-trace-format JSON to FILE (default trace.json); open \
                 in chrome://tracing or Perfetto. With \
                 \\$FDBS_TRACE_VIRTUAL_TS set, timestamps are deterministic \
                 pre-order ranks, so traces of the same workload are \
                 byte-identical for every --jobs value.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print the process-wide metrics snapshot (counters and latency \
               histograms) to stderr when the subcommand finishes.")

let observe trace stats =
  if trace <> None || stats then
    at_exit (fun () ->
        (match trace with
         | None -> ()
         | Some file ->
           Trace.set_enabled false;
           let virtual_ts = Sys.getenv_opt "FDBS_TRACE_VIRTUAL_TS" <> None in
           let spans = Trace.write_chrome ~virtual_ts file in
           Fmt.epr "fds: wrote Chrome trace to %s (%d spans)@." file spans);
        if stats then
          Fmt.epr "@[<v>metrics:@,%a@]@." Metrics.pp_snapshot (Metrics.snapshot ()));
  if trace <> None then Trace.set_enabled true

(* ------------------------------------------------------------------ *)
(* the unified execution configuration                                 *)
(* ------------------------------------------------------------------ *)

(* Every knob that used to be plumbed per-subcommand, folded into one
   Fdbs_service.Config.t term shared by run, replay, serve, verify,
   verify-files and stats. *)

let check_constraints_arg =
  Arg.(value & flag & info [ "check-constraints" ]
         ~doc:"Check the schema's integrity constraints at commit time.")

let budget_steps_arg =
  Arg.(value & opt (some int) None & info [ "budget-steps" ] ~docv:"N"
         ~doc:"Step fuel: abort (and roll back) after N statement executions.")

let budget_states_arg =
  Arg.(value & opt (some int) None & info [ "budget-states" ] ~docv:"N"
         ~doc:"Distinct-state cap per request for fixpoint exploration.")

let budget_ms_arg =
  Arg.(value & opt (some int) None & info [ "budget-ms" ] ~docv:"MS"
         ~doc:"Wall-clock deadline in milliseconds for the transaction.")

let fault_arg =
  Arg.(value & opt_all string [] & info [ "fault" ] ~docv:"SITE[:AFTER][:ACTION]"
         ~doc:"Inject a fault at a site (e.g. semantics.exec, txn.commit); \
               ACTION is abort (default), exhaust-steps, exhaust-states, \
               exhaust-time, or flip.")

let strategy_arg =
  let strategy_conv =
    Arg.enum [ ("auto", `Auto); ("naive", `Naive); ("compiled", `Compiled) ]
  in
  Arg.(value & opt strategy_conv `Auto & info [ "strategy" ] ~docv:"STRATEGY"
         ~doc:"Evaluation strategy for relational terms and wffs: \
               $(b,auto) runs compiled plans for safe bodies and falls back \
               to naive enumeration, $(b,compiled) requires every body to \
               compile (structured not-compilable error otherwise), \
               $(b,naive) always enumerates the carriers.")

let transactional_arg =
  Arg.(value & flag & info [ "transactional" ]
         ~doc:"Run all calls as one atomic transaction: commit everything \
               or roll back to the initial state with a structured error.")

let journal_arg =
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE"
         ~doc:"Append committed transactions to this write-ahead journal.")

let fsync_arg =
  Arg.(value & flag & info [ "fsync" ]
         ~doc:"fsync the journal after every committed append, so a commit \
               survives power loss, not just a process crash. Implied for a \
               replication leader (fds serve --journal).")

let rate_limit_arg =
  Arg.(value & opt (some float) None & info [ "rate-limit" ] ~docv:"RPS"
         ~doc:"Admission control: requests per second admitted per server \
               connection (token bucket); over-limit requests get a \
               structured overloaded error with a retry-after-ms hint \
               instead of stalling.")

let rate_burst_arg =
  Arg.(value & opt (some float) None & info [ "rate-burst" ] ~docv:"N"
         ~doc:"Burst capacity of the per-connection request bucket; the \
               default is one second's worth (the rate itself).")

let step_rate_arg =
  Arg.(value & opt (some float) None & info [ "step-rate" ] ~docv:"STEPS"
         ~doc:"Admission control: budget steps per second admitted per \
               store, post-charged with each request's actual spend — a \
               heavy request puts the bucket in debt and later requests \
               are rejected (overloaded, with retry-after-ms) until it \
               refills.")

let config_term =
  let combine jobs strategy steps states ms check_constraints transactional
      journal fsync trace stats rate_limit rate_burst step_rate =
    Config.make ?jobs ~strategy ?steps ?states ?ms ~check_constraints
      ~transactional ?journal ~fsync ?trace ~stats ?rate_limit ?rate_burst
      ?step_rate ()
  in
  Term.(const combine $ jobs_arg $ strategy_arg $ budget_steps_arg
        $ budget_states_arg $ budget_ms_arg $ check_constraints_arg
        $ transactional_arg $ journal_arg $ fsync_arg $ trace_arg $ stats_arg
        $ rate_limit_arg $ rate_burst_arg $ step_rate_arg)

(* Apply the process-level parts of a configuration: the pool width and
   the at_exit trace/stats observers. The session-level parts travel
   inside the record. *)
let setup (config : Config.t) =
  apply_jobs config.Config.jobs;
  observe config.Config.trace config.Config.stats

let open_session ?spec ~config path =
  match Session.open_text ?spec ~config (read_file path) with
  | Ok s -> s
  | Error e -> exit_err "%s" e.Error.message

let arm_faults specs =
  List.iter
    (fun spec ->
      match Fault.arm_spec spec with
      | Ok () -> ()
      | Error e -> exit_err "--fault %s: %s" spec e)
    specs

(* ------------------------------------------------------------------ *)
(* verify                                                              *)
(* ------------------------------------------------------------------ *)

let verify_cmd =
  let small =
    Arg.(value & flag & info [ "small" ] ~doc:"Use the 1-course/1-student domain.")
  in
  let depth =
    Arg.(value & opt int 2 & info [ "depth" ] ~docv:"N"
           ~doc:"Ground-probing and agreement sweep depth.")
  in
  let run small depth config =
    let open Fdbs in
    setup config;
    let domain = if small then University.small_domain else University.domain in
    Fmt.pr "verifying the university design (domain: %s, depth %d)...@."
      (if small then "1x1" else "2x2") depth;
    let v = Design.verify ~domain ~depth ~config University.design in
    Fmt.pr "%a@." Design.pp_verification v;
    if Design.verified v then Fmt.pr "VERIFIED@." else exit 1
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify the built-in university design end to end.")
    Term.(const run $ small $ depth $ config_term)

(* ------------------------------------------------------------------ *)
(* check-spec                                                          *)
(* ------------------------------------------------------------------ *)

let spec_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC-FILE")

let check_spec_cmd =
  let depth =
    Arg.(value & opt int 2 & info [ "depth" ] ~docv:"N" ~doc:"Ground-probing depth.")
  in
  let run path depth =
    match Fdbs_algebra.Aparser.spec (read_file path) with
    | Error e -> exit_err "%s" e
    | Ok spec ->
      Fmt.pr "%a@.@." Fdbs_algebra.Spec.pp spec;
      let report = Fdbs_algebra.Completeness.check ~depth spec in
      Fmt.pr "%a@." Fdbs_algebra.Completeness.pp_report report;
      if not (Fdbs_algebra.Completeness.is_complete report) then exit 1
  in
  Cmd.v
    (Cmd.info "check-spec"
       ~doc:"Parse an algebraic specification and check sufficient completeness.")
    Term.(const run $ spec_file $ depth)

(* ------------------------------------------------------------------ *)
(* check-schema / grammar                                              *)
(* ------------------------------------------------------------------ *)

let schema_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA-FILE")

let check_schema_cmd =
  let run path =
    match Fdbs_rpr.Rparser.schema (read_file path) with
    | Error e -> exit_err "%s" e.Fdbs_kernel.Error.message
    | Ok schema ->
      Fmt.pr "%a@.@." Fdbs_rpr.Schema.pp schema;
      Fmt.pr "well-formed: every relation declared, every wff well-sorted.@."
  in
  Cmd.v
    (Cmd.info "check-schema"
       ~doc:"Parse an RPR schema and check context-sensitive well-formedness.")
    Term.(const run $ schema_file)

let grammar_cmd =
  let run path =
    let src = read_file path in
    match Fdbs_wgrammar.Rpr_grammar.check_source src with
    | Ok () -> Fmt.pr "generated by the RPR W-grammar: yes@."
    | Error e ->
      Fmt.pr "generated by the RPR W-grammar: NO (%s)@." e;
      exit 1
  in
  Cmd.v
    (Cmd.info "grammar"
       ~doc:"Check a schema text against the RPR W-grammar (Section 5.1.1).")
    Term.(const run $ schema_file)

(* ------------------------------------------------------------------ *)
(* eval                                                                *)
(* ------------------------------------------------------------------ *)

(* A session over a bare schema carrying just the algebraic level: eval
   is a pure T2 operation, but it rides the same Session path as the
   server's "eval" op. *)
let eval_session path =
  match Fdbs_algebra.Aparser.spec (read_file path) with
  | Error e -> exit_err "%s" e
  | Ok spec ->
    let schema =
      {
        Fdbs_rpr.Schema.name = spec.Fdbs_algebra.Spec.name;
        relations = [];
        consts = [];
        constraints = [];
        procs = [];
      }
    in
    (match Session.open_ ~spec ~schema () with
     | Ok s -> s
     | Error e -> exit_err "%s" e.Error.message)

let eval_cmd =
  let term_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TERM"
           ~doc:"Ground term, e.g. 'offered(cs101, offer(cs101, initiate))'.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Print the rewriting derivation, innermost step first.")
  in
  let run path src trace =
    let session = eval_session path in
    match Session.eval session ~trace src with
    | Ok out -> print_string out
    | Error e -> exit_err "%s" e.Error.message
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Evaluate a ground query term against an algebraic specification.")
    Term.(const run $ spec_file $ term_arg $ trace)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let calls =
    Arg.(value & opt_all string [] & info [ "call"; "c" ] ~docv:"CALL"
           ~doc:"Procedure call, e.g. 'offer(cs101)'. Repeatable; applied in order.")
  in
  let pp_ok (name, args) =
    Fmt.pr "%s(%a) ok@." name Fmt.(list ~sep:(any ", ") Value.pp) args
  in
  let run path calls faults (config : Config.t) =
    setup config;
    let parsed =
      List.map
        (fun c ->
          match Protocol.parse_call c with
          | Ok x -> x
          | Error e -> exit_err "%s" e.Error.message)
        calls
    in
    let session = open_session ~config path in
    arm_faults faults;
    match Session.run session parsed with
    | Ok o ->
      if config.Config.transactional then
        Fmt.pr "committed %d calls@.@.final state:@.%a@."
          (List.length o.Session.completed) Fdbs_rpr.Db.pp o.Session.state
      else begin
        List.iter pp_ok o.Session.completed;
        Fmt.pr "@.final state:@.%a@." Fdbs_rpr.Db.pp o.Session.state
      end
    | Error f ->
      let e = f.Session.fail_error in
      (* errors from batch validation (unknown procedure, arity) keep
         the historical one-line form regardless of mode *)
      if List.mem_assoc "stage" e.Error.context then exit_err "%s" e.Error.message
      else if config.Config.transactional then begin
        Fmt.pr "transaction %a@.@.restored state:@.%a@." Fdbs_rpr.Txn.pp_rollback
          { Fdbs_rpr.Txn.error = e; restored = f.Session.fail_state }
          Fdbs_rpr.Db.pp f.Session.fail_state;
        exit 1
      end
      else begin
        List.iter pp_ok f.Session.fail_completed;
        match List.assoc_opt "call" e.Error.context with
        | Some name -> exit_err "%s: %s" name e.Error.message
        | None ->
          Fmt.epr "fds: %s@." e.Error.message;
          exit 2
      end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a sequence of procedure calls against a schema.")
    Term.(const run $ schema_file $ calls $ fault_arg $ config_term)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let delta_arg =
    Arg.(
      value & flag
      & info [ "delta" ]
          ~doc:
            "Also show each constraint's derivative plan: the per-relation \
             insert-derivatives the differential layer feeds commit deltas \
             through, and where it must fall back to full re-evaluation.")
  in
  let run path delta =
    let session = open_session ~config:Config.default path in
    print_string (Session.explain ~delta session)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the query plans of a schema: every constraint wff and every \
          (desugared) relational term, as compiled and as optimized, with the \
          live cardinality estimates the join order draws on.")
    Term.(const run $ schema_file $ delta_arg)

(* ------------------------------------------------------------------ *)
(* replay                                                              *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let journal =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"JOURNAL-FILE")
  in
  let run path journal (config : Config.t) =
    setup config;
    (* the journal positional is the input; never re-journal the replay *)
    let config = { config with Config.journal = None } in
    let session = open_session ~config path in
    match Session.replay session journal with
    | Ok r ->
      (match r.Session.rep_torn with
       | Some what -> Fmt.epr "fds: warning: journal %s: %s@." journal what
       | None -> ());
      (match r.Session.rep_snapshot with
       | Some off -> Fmt.pr "installed snapshot (offset %d)@." off
       | None -> ());
      Fmt.pr "replayed %d transactions (%d calls)@.@.final state:@.%a@."
        r.Session.rep_entries r.Session.rep_calls Fdbs_rpr.Db.pp
        r.Session.rep_state
    | Error e ->
      (match List.assoc_opt "stage" e.Error.context with
       | Some "load" ->
         let e =
           { e with
             Error.context =
               List.filter (fun (k, _) -> k <> "stage") e.Error.context }
         in
         exit_err "%s" (Fdbs_kernel.Error.to_string e)
       | Some _ -> exit_err "%s" e.Error.message
       | None ->
         Fmt.epr "fds: replay failed: %s@." (Fdbs_kernel.Error.to_string e);
         exit 1)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Recover the committed state by replaying a write-ahead journal \
             against a schema.")
    Term.(const run $ schema_file $ journal $ config_term)

(* ------------------------------------------------------------------ *)
(* serve / client                                                      *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path (default fds.sock).")

let tcp_arg =
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT"
         ~doc:"Listen on (or connect to) a TCP endpoint instead of a \
               Unix-domain socket; HOST must be an IP literal.")

let listen_of socket tcp : Server.listen =
  match tcp with
  | None -> `Unix (Option.value ~default:"fds.sock" socket)
  | Some hp ->
    (match String.rindex_opt hp ':' with
     | None -> exit_err "--tcp expects HOST:PORT, got %S" hp
     | Some i ->
       let host = String.sub hp 0 i in
       let port = String.sub hp (i + 1) (String.length hp - i - 1) in
       (match int_of_string_opt port with
        | Some p when String.length host > 0 -> `Tcp (host, p)
        | _ -> exit_err "--tcp expects HOST:PORT, got %S" hp))

(* A replication peer address: HOST:PORT when the suffix parses as a
   port on a non-empty host, a Unix-domain socket path otherwise. *)
let peer_of (addr : string) : Server.listen =
  match String.rindex_opt addr ':' with
  | None -> `Unix addr
  | Some i ->
    let host = String.sub addr 0 i in
    let port = String.sub addr (i + 1) (String.length addr - i - 1) in
    (match int_of_string_opt port with
     | Some p when String.length host > 0 -> `Tcp (host, p)
     | _ -> `Unix addr)

let serve_cmd =
  let workers =
    Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains serving connections concurrently; 0 (the \
                 default) means one per core, minimum 2.")
  in
  let spec_opt =
    Arg.(value & opt (some file) None & info [ "spec" ] ~docv:"SPEC-FILE"
           ~doc:"Attach an algebraic specification so clients can use the \
                 'eval' operation.")
  in
  let follow_arg =
    Arg.(value & opt (some string) None & info [ "follow" ] ~docv:"ADDR"
           ~doc:"Run as a read-only replication follower of the leader at \
                 ADDR (a Unix socket path or HOST:PORT): stream its \
                 committed transactions, apply them locally, reject writes. \
                 Requires --journal (the replica's own journal).")
  in
  let snapshot_every_arg =
    Arg.(value & opt int 64 & info [ "snapshot-every" ] ~docv:"N"
           ~doc:"Follower snapshot/truncation period in applied entries: \
                 bounds crash recovery to at most N replayed entries.")
  in
  let auth_arg =
    Arg.(value & opt (some string) None & info [ "auth-token" ] ~docv:"TOKEN"
           ~doc:"Require this token on 'attach' requests; without it \
                 attaching to a namespace is unauthenticated.")
  in
  let max_queue_arg =
    Arg.(value & opt int 1024 & info [ "max-queue" ] ~docv:"N"
           ~doc:"Shed accepted connections once N are already queued for \
                 workers: the shed connection gets one structured \
                 overloaded frame and is closed, never parked.")
  in
  let monitors_arg =
    Arg.(value & opt (some file) None & info [ "monitors" ] ~docv:"THEORY-FILE"
           ~doc:"Attach streaming temporal monitors compiled from this theory \
                 file: every commit advances them, violations become event \
                 frames on subscribed connections (see the 'subscribe' op) \
                 and monitor.* metrics. Attached after recovery, so a \
                 replayed journal does not re-fire events.")
  in
  let enforce_arg =
    Arg.(value & flag & info [ "enforce-monitors" ]
           ~doc:"Roll back commits that violate a monitored axiom (structured \
                 monitor-violation error) instead of only reporting them. \
                 Followers always observe: they cannot reject entries the \
                 leader already committed.")
  in
  let run path socket tcp workers spec_path follow snapshot_every auth
      max_queue monitors_path enforce faults (config : Config.t) =
    setup config;
    let listen = listen_of socket tcp in
    let follow = Option.map peer_of follow in
    let spec =
      Option.map
        (fun p ->
          match Fdbs_algebra.Aparser.spec (read_file p) with
          | Ok s -> s
          | Error e -> exit_err "%s: %s" p e)
        spec_path
    in
    let schema =
      match Fdbs_rpr.Rparser.schema (read_file path) with
      | Ok s -> s
      | Error e -> exit_err "%s" e.Fdbs_kernel.Error.message
    in
    let monitors =
      Option.map
        (fun p ->
          match Fdbs_rpr.Monitor.of_file ~schema p with
          | Ok m ->
            List.iter
              (fun (axiom, why) ->
                Fmt.epr "fds: warning: monitor %s skipped: %s@." axiom why)
              (Fdbs_rpr.Monitor.skipped m);
            (m, if enforce then `Enforce else `Observe)
          | Error e -> exit_err "%s: %s" p (Fdbs_kernel.Error.to_string e))
        monitors_path
    in
    arm_faults faults;
    let ready () =
      match follow with
      | Some leader ->
        Fmt.epr "fds: serving %s on %s (following %s)@."
          schema.Fdbs_rpr.Schema.name (Server.describe listen)
          (Server.describe leader)
      | None ->
        Fmt.epr "fds: serving %s on %s@." schema.Fdbs_rpr.Schema.name
          (Server.describe listen)
    in
    match
      Server.serve ~workers ?spec ~config ~ready ?follow ~snapshot_every
        ?auth ~max_queue ?monitors listen schema
    with
    | Ok st ->
      Fmt.epr "fds: server stopped (%d connections, %d requests)@."
        st.Server.served_connections st.Server.served_requests
    | Error e -> exit_err "%s" (Fdbs_kernel.Error.to_string e)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a schema over a socket: one warm session per connection, \
          length-prefixed JSON frames (see the protocol reference in the \
          README). With --journal the server is a replication leader \
          (fsynced journal, serves the 'fetch' op); with --follow it is a \
          read-only follower of a leader. A 'shutdown' request, SIGINT or \
          SIGTERM stops the server gracefully: the journal is already \
          durable per commit, the trace observer fires on exit.")
    Term.(const run $ schema_file $ socket_arg $ tcp_arg $ workers $ spec_opt
          $ follow_arg $ snapshot_every_arg $ auth_arg $ max_queue_arg
          $ monitors_arg $ enforce_arg $ fault_arg $ config_term)

let client_cmd =
  let requests =
    Arg.(value & pos_all string [] & info [] ~docv:"REQUEST"
           ~doc:"JSON request objects, e.g. '{\"id\": 1, \"op\": \"ping\"}'. \
                 With no positional requests, one request per stdin line.")
  in
  let retries_arg =
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N"
           ~doc:"Retry a transient connection failure (connection refused or \
                 reset, missing socket, or a close before the first \
                 response) up to N times with capped exponential backoff \
                 plus jitter — de-flakes scripts racing a server boot.")
  in
  let pool_arg =
    Arg.(value & opt int 1 & info [ "pool" ] ~docv:"N"
           ~doc:"Open N persistent connections and spread the requests over \
                 them round-robin, reusing each connection across requests.")
  in
  let repeat_arg =
    Arg.(value & opt int 1 & info [ "requests" ] ~docv:"N"
           ~doc:"Send the request script N times over (combine with --pool \
                 for a quick load drive).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ]
           ~doc:"Suppress per-response output; print only a final response \
                 count.")
  in
  let run socket tcp retries pool repeat quiet requests =
    let addr =
      match listen_of socket tcp with
      | `Unix path -> Unix.ADDR_UNIX path
      | `Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
    in
    Random.self_init ();
    let backoff attempt =
      (* 0.1s * 2^attempt, capped at 1s, with +/-25% jitter so racing
         clients don't reconnect in lockstep *)
      let base = Stdlib.min 1.0 (0.1 *. (2. ** float_of_int attempt)) in
      Unix.sleepf (base *. (0.75 +. Random.float 0.5))
    in
    let transient = function
      | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT
      | Unix.ENETUNREACH | Unix.EPIPE -> true
      | _ -> false
    in
    let rec connect attempt =
      let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
      match Unix.connect sock addr with
      | () -> sock
      | exception Unix.Unix_error (err, _, _) ->
        Unix.close sock;
        if attempt < retries && transient err then (
          backoff attempt;
          connect (attempt + 1))
        else exit_err "cannot connect: %s" (Unix.error_message err)
    in
    let responded = ref 0 in
    (* A close before any response usually means the server died (or was
       killed) between accept and reply: for positional requests nothing
       was consumed yet, so the whole batch can retry on a fresh
       connection. Once a response has printed, or in stdin mode (lines
       already consumed), a close is fatal. *)
    let rec session attempt =
      let sock = connect attempt in
      let ic = Unix.in_channel_of_descr sock in
      let oc = Unix.out_channel_of_descr sock in
      let exchange req =
        Protocol.write_frame oc req;
        match Protocol.read_frame ic with
        | Some resp ->
          print_endline resp;
          incr responded
        | None -> raise End_of_file
      in
      let rec stdin_loop () =
        (* catch only stdin's own end: a close from the server side
           (exchange) must propagate *)
        match input_line stdin with
        | exception End_of_file -> ()
        | line ->
          let line = String.trim line in
          if line <> "" then exchange line;
          stdin_loop ()
      in
      match
        match requests with
        | [] -> stdin_loop ()
        | reqs -> List.iter exchange reqs
      with
      | () -> close_out_noerr oc
      | exception (End_of_file | Sys_error _ | Error.Error _)
        when !responded = 0 && requests <> [] && attempt < retries ->
        close_out_noerr oc;
        backoff attempt;
        session (attempt + 1)
      | exception (End_of_file | Sys_error _) ->
        close_out_noerr oc;
        exit_err "server closed the connection"
    in
    if pool <= 1 && repeat <= 1 && not quiet then session 0
    else begin
      (* pooled mode: read the whole script up front, repeat it
         --requests times, and spread it round-robin over --pool
         persistent connections — each reused across its share of the
         script rather than reopened per request *)
      let script =
        match requests with
        | [] ->
          let rec go acc =
            match input_line stdin with
            | exception End_of_file -> List.rev acc
            | line ->
              let line = String.trim line in
              go (if line = "" then acc else line :: acc)
          in
          go []
        | reqs -> reqs
      in
      let script =
        List.concat (List.init (Stdlib.max 1 repeat) (fun _ -> script))
      in
      let pool = Stdlib.max 1 pool in
      let conns =
        Array.init pool (fun _ ->
            let sock = connect 0 in
            (Unix.in_channel_of_descr sock, Unix.out_channel_of_descr sock))
      in
      let count = ref 0 in
      List.iteri
        (fun i req ->
          let ic, oc = conns.(i mod pool) in
          match
            Protocol.write_frame oc req;
            Protocol.read_frame ic
          with
          | Some resp ->
            incr count;
            if not quiet then print_endline resp
          | None -> exit_err "server closed the connection"
          | exception (End_of_file | Sys_error _) ->
            exit_err "server closed the connection"
          | exception Error.Error e -> exit_err "%s" (Error.to_string e))
        script;
      Array.iter (fun (_, oc) -> close_out_noerr oc) conns;
      if quiet then Fmt.pr "%d responses@." !count
    end
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send protocol requests to a running fds server and print one \
             JSON response per line. Transient connection failures retry \
             with backoff (see --retries); --pool N reuses N persistent \
             connections round-robin and --requests N repeats the script.")
    Term.(const run $ socket_arg $ tcp_arg $ retries_arg $ pool_arg
          $ repeat_arg $ quiet_arg $ requests)

(* ------------------------------------------------------------------ *)
(* monitor                                                             *)
(* ------------------------------------------------------------------ *)

let kind_name = function
  | Fdbs_temporal.Tformula.Static -> "static"
  | Fdbs_temporal.Tformula.Transition -> "transition"

let monitor_cmd =
  let schema_pos =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"SCHEMA-FILE")
  in
  let theory_pos =
    Arg.(value & pos 1 (some file) None & info [] ~docv:"THEORY-FILE")
  in
  let subscribe_arg =
    Arg.(value & flag & info [ "subscribe" ]
           ~doc:"Connect to a running server (--socket/--tcp), negotiate \
                 protocol v2, subscribe, and print each event frame as one \
                 JSON line; requires the server to run with --monitors.")
  in
  let events_arg =
    Arg.(value & opt int 0 & info [ "events" ] ~docv:"N"
           ~doc:"With --subscribe: exit after N violation events (0 = stream \
                 until the server closes the connection).")
  in
  let run schema_path theory_path subscribe socket tcp events
      (config : Config.t) =
    setup config;
    if subscribe then begin
      (* live mode: raw protocol client over the typed frame helpers *)
      let addr =
        match listen_of socket tcp with
        | `Unix path -> Unix.ADDR_UNIX path
        | `Tcp (host, port) ->
          Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
      in
      let rec connect attempt =
        let sock =
          Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
        in
        match Unix.connect sock addr with
        | () -> sock
        | exception Unix.Unix_error (err, _, _) ->
          Unix.close sock;
          (match err with
           | (Unix.ECONNREFUSED | Unix.ENOENT) when attempt < 50 ->
             Unix.sleepf 0.1;
             connect (attempt + 1)
           | _ -> exit_err "cannot connect: %s" (Unix.error_message err))
      in
      let sock = connect 0 in
      let ic = Unix.in_channel_of_descr sock in
      let oc = Unix.out_channel_of_descr sock in
      let exchange req =
        Protocol.write_frame oc (Json.to_string req);
        match Protocol.read_frame ic with
        | None -> exit_err "server closed the connection"
        | Some payload ->
          (match Json.parse payload with
           | exception Json.Parse_error m -> exit_err "bad reply: %s" m
           | v -> v)
      in
      (* hello first: an old server answers "unknown operation" and a
         monitor-less one omits the feature, both reported cleanly *)
      let hello =
        exchange
          (Json.Obj
             [
               ("id", Json.Num 0.);
               ("op", Json.Str "hello");
               ("version", Json.Num 2.);
             ])
      in
      let features =
        match
          Option.bind (Json.field "result" hello) (Json.field "features")
        with
        | Some (Json.Arr items) -> List.filter_map Json.to_string_opt items
        | _ -> []
      in
      if Option.bind (Json.field "ok" hello) Json.to_bool_opt <> Some true then
        exit_err "server does not speak protocol v2 (no hello)"
      else if not (List.mem "monitors" features) then
        exit_err "server has no monitors attached (fds serve --monitors)";
      let sub =
        exchange (Json.Obj [ ("id", Json.Num 1.); ("op", Json.Str "subscribe") ])
      in
      (match Option.bind (Json.field "ok" sub) Json.to_bool_opt with
       | Some true -> ()
       | _ -> exit_err "subscribe rejected: %s" (Json.to_string sub));
      (* the reply is followed by event frames only: a heartbeat first,
         then one violation frame per fired monitor *)
      let rec stream seen =
        if events > 0 && seen >= events then ()
        else
          match Protocol.read_frame ic with
          | None -> ()
          | Some payload ->
            print_endline payload;
            flush stdout;
            let seen =
              match Json.parse payload with
              | exception Json.Parse_error _ -> seen
              | v ->
                (match Protocol.classify_frame v with
                 | `Event "violation" -> seen + 1
                 | _ -> seen)
            in
            stream seen
      in
      stream 0;
      close_out_noerr oc
    end
    else begin
      let require what = function
        | Some p -> p
        | None ->
          exit_err "monitor needs %s (or --subscribe for the live mode)" what
      in
      let schema_path = require "a SCHEMA-FILE" schema_path in
      let theory_path = require "a THEORY-FILE" theory_path in
      let schema =
        match Fdbs_rpr.Rparser.schema (read_file schema_path) with
        | Ok s -> s
        | Error e -> exit_err "%s" e.Error.message
      in
      let m =
        match Fdbs_rpr.Monitor.of_file ~schema theory_path with
        | Ok m -> m
        | Error e -> exit_err "%s" (Error.to_string e)
      in
      Fmt.pr "theory %s against schema %s:@." (Fdbs_rpr.Monitor.name m)
        schema.Fdbs_rpr.Schema.name;
      List.iter
        (fun (c : Fdbs_rpr.Monitor.compiled) ->
          Fmt.pr "  %s: %s, depth %d%s@." c.Fdbs_rpr.Monitor.m_name
            (kind_name c.Fdbs_rpr.Monitor.m_kind) c.Fdbs_rpr.Monitor.m_depth
            (if c.Fdbs_rpr.Monitor.m_compiled then "" else " (naive)"))
        (Fdbs_rpr.Monitor.monitors m);
      List.iter
        (fun (axiom, why) -> Fmt.pr "  %s: skipped (%s)@." axiom why)
        (Fdbs_rpr.Monitor.skipped m);
      match config.Config.journal with
      | None -> ()
      | Some journal ->
        (* replay the journal through the session machinery with the
           monitors attached and observing: every violation in the
           history is reported, the replay itself always completes *)
        let config =
          { config with Config.journal = None; Config.transactional = true }
        in
        let session =
          match Session.open_ ~config ~schema () with
          | Ok s -> s
          | Error e -> exit_err "%s" e.Error.message
        in
        Session.Store.attach_monitors (Session.store session) m;
        (match
           Session.subscribe session (fun events ->
               List.iter
                 (fun ev -> Fmt.pr "%a@." Fdbs_rpr.Monitor.pp_event ev)
                 events)
         with
         | Ok () -> ()
         | Error e -> exit_err "%s" (Error.to_string e));
        (match Fdbs_rpr.Journal.load journal with
         | Error e -> exit_err "%s" (Error.to_string e)
         | Ok (entries, torn) ->
           (match torn with
            | Some what -> Fmt.epr "fds: warning: journal %s: %s@." journal what
            | None -> ());
           List.iteri
             (fun i (entry : Fdbs_rpr.Journal.entry) ->
               match Session.run session entry.Fdbs_rpr.Journal.calls with
               | Ok _ -> ()
               | Error f ->
                 exit_err "entry %d: %s" (i + 1)
                   (Error.to_string f.Session.fail_error))
             entries;
           (match Session.monitor session with
            | Ok st ->
              Fmt.pr "replayed %d entries: %d violations@." (List.length entries)
                st.Session.mon_violations
            | Error e -> exit_err "%s" (Error.to_string e)))
    end
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Streaming temporal monitors. Offline: compile a theory's axioms \
          against a schema, report which are monitorable (and why the rest \
          are skipped), and — with --journal — replay a write-ahead journal \
          through them, printing every violation. With --subscribe: connect \
          to a running 'fds serve --monitors' server and stream its \
          violation/heartbeat event frames.")
    Term.(const run $ schema_pos $ theory_pos $ subscribe_arg $ socket_arg
          $ tcp_arg $ events_arg $ config_term)

(* ------------------------------------------------------------------ *)
(* verify-files                                                        *)
(* ------------------------------------------------------------------ *)

let verify_files_cmd =
  let theory_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"THEORY-FILE")
  in
  let spec_pos =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"SPEC-FILE")
  in
  let schema_pos =
    Arg.(required & pos 2 (some file) None & info [] ~docv:"SCHEMA-FILE")
  in
  let depth =
    Arg.(value & opt int 2 & info [ "depth" ] ~docv:"N"
           ~doc:"Ground-probing and agreement sweep depth.")
  in
  let run theory_path spec_path schema_path depth config =
    setup config;
    let info =
      match Fdbs_temporal.Tparser.theory (read_file theory_path) with
      | Ok t -> t
      | Error e -> exit_err "%s: %s" theory_path e
    in
    let functions =
      match Fdbs_algebra.Aparser.spec (read_file spec_path) with
      | Ok s -> s
      | Error e -> exit_err "%s: %s" spec_path e
    in
    let representation =
      match Fdbs_rpr.Rparser.schema (read_file schema_path) with
      | Ok s -> s
      | Error e -> exit_err "%s: %s" schema_path e.Fdbs_kernel.Error.message
    in
    let design =
      match
        Fdbs.Design.canonical ~name:info.Fdbs_temporal.Ttheory.name ~info ~functions
          ~representation
      with
      | Ok d -> d
      | Error e -> exit_err "%s" e.Fdbs_kernel.Error.message
    in
    Fmt.pr "verifying design %s (domain: the spec's parameter names, depth %d)...@."
      info.Fdbs_temporal.Ttheory.name depth;
    let v = Fdbs.Design.verify ~depth ~config design in
    Fmt.pr "%a@." Fdbs.Design.pp_verification v;
    if Fdbs.Design.verified v then Fmt.pr "VERIFIED@." else exit 1
  in
  Cmd.v
    (Cmd.info "verify-files"
       ~doc:
         "Verify a three-level design given as files (theory, algebraic \
          specification, schema) bound by the canonical name correspondence.")
    Term.(const run $ theory_file $ spec_pos $ schema_pos $ depth $ config_term)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let depth =
    Arg.(value & opt int 2 & info [ "depth" ] ~docv:"N"
           ~doc:"Ground instance depth for joinability.")
  in
  let run path depth =
    match Fdbs_algebra.Aparser.spec (read_file path) with
    | Error e -> exit_err "%s" e
    | Ok spec ->
      let open Fdbs_algebra in
      Fmt.pr "== sufficient completeness ==@.";
      Fmt.pr "%a@.@." Completeness.pp_report (Completeness.check ~depth spec);
      Fmt.pr "== critical pairs / confluence ==@.";
      (match Confluence.check ~depth spec with
       | Error e -> exit_err "%a" Eval.pp_error e
       | Ok report ->
         Fmt.pr "%a@.@." Confluence.pp_report report;
         Fmt.pr "== observability ==@.";
         (match Reach.explore spec with
          | Error e -> exit_err "%a" Eval.pp_error e
          | Ok g ->
            Fmt.pr "reachable quotient: %a@." Reach.pp_stats g;
            Fmt.pr "full query set identifies every state: %b@."
              (Observability.observable g);
            Fmt.pr "%a@." Observability.pp_ablation (Observability.ablation spec g)))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static analyses of an algebraic specification: completeness, \
          critical pairs, observability ablation.")
    Term.(const run $ spec_file $ depth)

(* ------------------------------------------------------------------ *)
(* derive / synthesize                                                 *)
(* ------------------------------------------------------------------ *)

let parse_with_descriptions path =
  match Fdbs_algebra.Aparser.spec_with_descriptions (read_file path) with
  | Error e -> exit_err "%s" e
  | Ok (spec, []) ->
    ignore spec;
    exit_err "%s contains no 'describe' blocks" path
  | Ok (spec, descriptions) -> (spec, descriptions)

let derive_cmd =
  let run path =
    let spec, descriptions = parse_with_descriptions path in
    let sg = spec.Fdbs_algebra.Spec.signature in
    match Fdbs_algebra.Derive.equations sg descriptions with
    | Error e -> exit_err "%s" e
    | Ok eqs ->
      Fmt.pr "# equations derived from the structured descriptions (Sec 4.2)@.";
      List.iter (fun eq -> Fmt.pr "%a@." Fdbs_algebra.Equation.pp eq) eqs
  in
  Cmd.v
    (Cmd.info "derive"
       ~doc:
         "Derive conditional equations from a specification's structured \
          descriptions (the paper's constructive method, Section 4.2).")
    Term.(const run $ spec_file)

let synthesize_cmd =
  let run path =
    let spec, descriptions = parse_with_descriptions path in
    let sg = spec.Fdbs_algebra.Spec.signature in
    match
      Fdbs_refine.Synthesize.schema ~name:spec.Fdbs_algebra.Spec.name sg descriptions
    with
    | Error e -> exit_err "%s" e.Fdbs_kernel.Error.message
    | Ok schema -> Fmt.pr "%a@." Fdbs_rpr.Schema.pp schema
  in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:
         "Synthesize representation-level procedures from structured \
          descriptions (the paper's constructive pattern, Section 5.2).")
    Term.(const run $ spec_file)

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_cmd =
  let depth =
    Arg.(value & opt int 1 & info [ "depth" ] ~docv:"N"
           ~doc:"Ground-probing and agreement sweep depth of the workload.")
  in
  let run depth config =
    let open Fdbs in
    setup config;
    let v =
      Design.verify ~domain:University.small_domain ~depth ~config
        University.design
    in
    ignore (Design.verified v);
    Fmt.pr "%a@." Metrics.pp_snapshot (Metrics.snapshot ())
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the built-in university verification (small domain) and print \
          the metrics snapshot it produces: every process-wide counter and \
          latency histogram of the toolkit, by name. Use --stats on the \
          other subcommands to snapshot their own workloads.")
    Term.(const run $ depth $ config_term)

(* ------------------------------------------------------------------ *)
(* demo                                                                *)
(* ------------------------------------------------------------------ *)

let demo_cmd =
  let run () =
    let open Fdbs in
    Fmt.pr "fdbs: formal database specification, an eclectic perspective@.";
    Fmt.pr "(Casanova, Veloso & Furtado, PODS 1984)@.@.";
    Fmt.pr "The university example, three levels:@.@.";
    Fmt.pr "T1 (temporal): %s@." University.static_axiom_src;
    Fmt.pr "               %s@.@." University.transition_axiom_src;
    Fmt.pr "T2 (algebraic): %d conditional equations@."
      (List.length University.functions.Fdbs_algebra.Spec.equations);
    Fmt.pr "T3 (RPR): %d relations, %d procedures@.@."
      (List.length University.representation.Fdbs_rpr.Schema.relations)
      (List.length University.representation.Fdbs_rpr.Schema.procs);
    let v = Design.verify ~domain:University.small_domain ~depth:2 University.design in
    Fmt.pr "%a@.@." Design.pp_verification v;
    Fmt.pr "Run 'fds verify' for the full 2x2 check, or the examples:@.";
    Fmt.pr "  dune exec examples/quickstart.exe@.";
    Fmt.pr "  dune exec examples/library_loans.exe@.";
    Fmt.pr "  dune exec examples/banking.exe@."
  in
  Cmd.v (Cmd.info "demo" ~doc:"A compact tour of the framework.") Term.(const run $ const ())

let () =
  let info =
    Cmd.info "fds" ~version:"1.0.0"
      ~doc:"Formal database specification at three bound levels (PODS 1984)."
  in
  (* Top-level robustness: any exception that escapes a subcommand —
     unreadable files, execution errors, parse failures on paths that
     bypass argument validation — exits 2 with a one-line message
     instead of an OCaml backtrace. *)
  let code =
    try
      Cmd.eval ~catch:false
        (Cmd.group info
           [ verify_cmd; verify_files_cmd; check_spec_cmd; check_schema_cmd;
             grammar_cmd; analyze_cmd; derive_cmd; synthesize_cmd; eval_cmd;
             explain_cmd; run_cmd; replay_cmd; serve_cmd; client_cmd;
             monitor_cmd; stats_cmd; demo_cmd ])
    with
    | Sys_error msg -> Fmt.epr "fds: %s@." msg; 2
    | Fdbs_rpr.Semantics.Exec_error msg -> Fmt.epr "fds: execution error: %s@." msg; 2
    | Error.Error e -> Fmt.epr "fds: %s@." (Error.to_string e); 2
    | Budget.Exhausted r ->
      Fmt.epr "fds: budget exhausted (%s)@." (Budget.resource_name r); 2
    | Fault.Injected site -> Fmt.epr "fds: fault injected at %s@." site; 2
    | Parse.Error (msg, _) -> Fmt.epr "fds: parse error: %s@." msg; 2
    | Invalid_argument msg | Failure msg -> Fmt.epr "fds: %s@." msg; 2
  in
  exit code
